// Tests for the distributed slot-allocation protocol: the tag state
// machine (Fig. 7 / Appendix C transitions), the reader controller
// (feedback, Eq. 4 EMPTY prediction, Sec. 5.6 future-collision avoidance),
// the slot-level network co-simulation, and convergence properties.
#include <gtest/gtest.h>

#include <set>

#include "arachnet/core/experiment_configs.hpp"
#include "arachnet/core/markov_theory.hpp"
#include "arachnet/core/protocol.hpp"
#include "arachnet/core/reader_controller.hpp"
#include "arachnet/core/slot_network.hpp"
#include "arachnet/core/tag_state_machine.hpp"

namespace {

using namespace arachnet::core;
using arachnet::phy::DlCommand;

const DlCommand kAck{.ack = true, .empty = false, .reset = false};
const DlCommand kNack{.ack = false, .empty = false, .reset = false};
const DlCommand kNackEmpty{.ack = false, .empty = true, .reset = false};
const DlCommand kAckEmpty{.ack = true, .empty = true, .reset = false};

// ---------------------------------------------------------------- Protocol

TEST(Protocol, PermissiblePeriods) {
  EXPECT_TRUE(is_permissible_period(1));
  EXPECT_TRUE(is_permissible_period(2));
  EXPECT_TRUE(is_permissible_period(32));
  EXPECT_FALSE(is_permissible_period(0));
  EXPECT_FALSE(is_permissible_period(3));
  EXPECT_FALSE(is_permissible_period(12));
}

TEST(Protocol, UtilizationEquation1) {
  EXPECT_DOUBLE_EQ(slot_utilization({2, 4, 8, 8}), 1.0);  // Table 1 example
  EXPECT_DOUBLE_EQ(slot_utilization({4, 8, 8, 16, 16, 32, 32, 32, 32, 32, 32,
                                     32}),
                   slot_utilization({4}) + slot_utilization({8, 8}) +
                       slot_utilization({16, 16}) +
                       7.0 / 32.0);
  EXPECT_THROW(slot_utilization({5}), std::invalid_argument);
}

TEST(Protocol, Table3ConfigsMatchPaper) {
  const auto& configs = table3_configs();
  ASSERT_EQ(configs.size(), 9u);
  const int expected_tags[] = {12, 12, 12, 12, 12, 11, 10, 8, 6};
  const double expected_util[] = {0.375, 0.75, 0.84375, 0.9375, 1.0,
                                  0.75, 0.75, 0.75, 0.75};
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(configs[i].tag_count(), expected_tags[i]) << configs[i].name;
    EXPECT_DOUBLE_EQ(configs[i].utilization(), expected_util[i])
        << configs[i].name;
  }
  EXPECT_EQ(table3_config("c3").tags_period_32, 7);
  EXPECT_THROW(table3_config("c10"), std::out_of_range);
}

// ---------------------------------------------------------- State machine

TagStateMachine::Config cfg(int period) {
  TagStateMachine::Config c;
  c.period = period;
  c.empty_gating = false;  // most unit tests exercise the core machine
  return c;
}

TEST(TagSm, StartsInMigrateWithValidOffset) {
  TagStateMachine sm{cfg(8), 42};
  EXPECT_EQ(sm.state(), TagState::kMigrate);
  EXPECT_GE(sm.offset(), 0);
  EXPECT_LT(sm.offset(), 8);
  EXPECT_TRUE(sm.fresh());
}

TEST(TagSm, TransmitsOnlyAtItsOffset) {
  TagStateMachine sm{cfg(4), 1};
  int transmissions = 0;
  for (int s = 0; s < 16; ++s) {
    if (sm.on_beacon(kNack)) ++transmissions;
  }
  // Offset may move after each NACKed transmission, but the schedule rule
  // (Eq. 2) allows at most one transmission per period.
  EXPECT_LE(transmissions, 8);
  EXPECT_GE(transmissions, 1);
}

TEST(TagSm, AckSettles) {
  TagStateMachine sm{cfg(2), 7};
  // Drive until it transmits, then ACK it.
  while (!sm.on_beacon(kNack)) {
  }
  sm.on_beacon(kAck);
  EXPECT_EQ(sm.state(), TagState::kSettle);
  EXPECT_FALSE(sm.fresh());
}

TEST(TagSm, FeedbackIgnoredUnlessTransmitted) {
  TagStateMachine sm{cfg(8), 3};
  // A NACK arriving when the tag did NOT transmit in the closed slot must
  // not change the offset (Sec. 5.3: tags disregard such feedback).
  for (int s = 0; s < 40; ++s) {
    const bool transmitted = sm.transmitted_last_slot();
    const int offset_before = sm.offset();
    sm.on_beacon(kNack);
    if (!transmitted) {
      EXPECT_EQ(sm.offset(), offset_before) << "slot " << s;
    }
  }
}

TEST(TagSm, MigrateChangesOffsetOnNack) {
  TagStateMachine sm{cfg(32), 11};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) {
    if (sm.on_beacon(kNack)) seen.insert(sm.offset());
  }
  // Repeated NACKs must explore many offsets.
  EXPECT_GE(seen.size(), 8u);
}

TEST(TagSm, SettleToleratesUpToNMinusOneNacks) {
  TagStateMachine sm{cfg(2), 5};
  while (!sm.on_beacon(kNack)) {
  }
  sm.on_beacon(kAck);  // settle
  ASSERT_EQ(sm.state(), TagState::kSettle);
  const int settled_offset = sm.offset();
  // Two consecutive NACKs on its transmissions: stays settled (N=3).
  int nacks = 0;
  while (nacks < 2) {
    if (sm.transmitted_last_slot()) ++nacks;
    if (nacks >= 2) break;
    sm.on_beacon(nacks > 0 ? kNack : kNack);
  }
  EXPECT_EQ(sm.state(), TagState::kSettle);
  EXPECT_EQ(sm.offset(), settled_offset);
  // An ACK resets the failure counter.
  sm.on_beacon(kAck);
  EXPECT_EQ(sm.nack_count(), 0);
}

TEST(TagSm, ThirdConsecutiveNackMigrates) {
  TagStateMachine sm{cfg(1), 9};  // period 1: transmits every slot
  sm.on_beacon(kNack);            // first transmission
  sm.on_beacon(kAck);             // settle
  ASSERT_EQ(sm.state(), TagState::kSettle);
  sm.on_beacon(kNack);
  sm.on_beacon(kNack);
  EXPECT_EQ(sm.state(), TagState::kSettle);
  sm.on_beacon(kNack);  // third consecutive
  EXPECT_EQ(sm.state(), TagState::kMigrate);
  EXPECT_EQ(sm.nack_count(), 0);
}

TEST(TagSm, BeaconLossMigratesWithRefinement) {
  TagStateMachine sm{cfg(1), 13};
  sm.on_beacon(kNack);
  sm.on_beacon(kAck);
  ASSERT_EQ(sm.state(), TagState::kSettle);
  const int idx = sm.slot_index();
  sm.on_beacon_loss();
  EXPECT_EQ(sm.state(), TagState::kMigrate);
  EXPECT_EQ(sm.slot_index(), idx);  // missed boundary: no increment
}

TEST(TagSm, BeaconLossWithoutRefinementKeepsState) {
  auto c = cfg(1);
  c.beacon_loss_migrate = false;
  TagStateMachine sm{c, 13};
  sm.on_beacon(kNack);
  sm.on_beacon(kAck);
  ASSERT_EQ(sm.state(), TagState::kSettle);
  sm.on_beacon_loss();
  EXPECT_EQ(sm.state(), TagState::kSettle);  // vanilla behaviour (Sec. 5.4)
}

TEST(TagSm, ResetCommandRestartsEverything) {
  TagStateMachine sm{cfg(2), 17};
  sm.on_beacon(kNack);
  while (sm.state() != TagState::kSettle) {
    sm.on_beacon(sm.transmitted_last_slot() ? kAck : kNack);
  }
  const DlCommand reset_cmd{.ack = false, .empty = true, .reset = true};
  sm.on_beacon(reset_cmd);
  EXPECT_EQ(sm.state(), TagState::kMigrate);
  // RESET restarts contention but is NOT a new arrival: the EMPTY gating
  // of Sec. 5.5 only applies to newly activated tags.
  EXPECT_FALSE(sm.fresh());
  EXPECT_EQ(sm.slot_index(), 0);  // the RESET beacon opened slot 0
}

TEST(TagSm, EmptyGatingBlocksFreshTags) {
  TagStateMachine::Config c;
  c.period = 1;  // would transmit every slot
  c.empty_gating = true;
  TagStateMachine sm{c, 21};
  // All beacons say not-empty: a fresh tag must stay silent.
  for (int s = 0; s < 10; ++s) {
    EXPECT_FALSE(sm.on_beacon(kNack));
  }
  // An EMPTY beacon lets it in.
  EXPECT_TRUE(sm.on_beacon(kNackEmpty));
  // Once settled, the EMPTY flag no longer gates it.
  sm.on_beacon(kAck);
  EXPECT_FALSE(sm.fresh());
  EXPECT_TRUE(sm.on_beacon(kNack) || sm.transmitted_last_slot());
}

TEST(TagSm, RejectsInvalidPeriod) {
  TagStateMachine::Config c;
  c.period = 6;
  EXPECT_THROW((TagStateMachine{c, 1}), std::invalid_argument);
}

// ------------------------------------------------------- ReaderController

TEST(Reader, AcksCleanDecodeNacksCollision) {
  ReaderController reader;
  reader.register_tag(1, 4);
  auto cmd = reader.close_slot({.decoded_tid = 1, .collision_detected = false});
  EXPECT_TRUE(cmd.ack);
  cmd = reader.close_slot({.decoded_tid = 1, .collision_detected = true});
  EXPECT_FALSE(cmd.ack);  // capture-effect decode during collision: NACK
  cmd = reader.close_slot({.decoded_tid = std::nullopt,
                           .collision_detected = false});
  EXPECT_FALSE(cmd.ack);
}

TEST(Reader, EmptyFlagPredictsPeriodicOccupancy) {
  ReaderController reader;
  reader.register_tag(1, 4);
  // Tag 1 settles at slot 0 (offset 0): slots 4, 8, ... are occupied.
  auto cmd = reader.close_slot({.decoded_tid = 1});  // slot 0
  EXPECT_TRUE(cmd.ack);
  // Beacon opening slot 1: probe slot 1-4 < 0 -> empty.
  EXPECT_TRUE(cmd.empty);
  cmd = reader.close_slot({});  // slot 1
  EXPECT_TRUE(cmd.empty);       // opens slot 2
  cmd = reader.close_slot({});  // slot 2
  EXPECT_TRUE(cmd.empty);       // opens slot 3
  cmd = reader.close_slot({});  // slot 3 -> opens slot 4 = occupied
  EXPECT_FALSE(cmd.empty);
}

TEST(Reader, ConvergenceDetector) {
  ReaderController::Config cfg;
  cfg.convergence_window = 4;
  ReaderController reader{cfg};
  reader.register_tag(1, 2);
  reader.close_slot({.collision_detected = true});
  for (int i = 0; i < 3; ++i) reader.close_slot({});
  EXPECT_FALSE(reader.converged());
  reader.close_slot({});
  EXPECT_TRUE(reader.converged());
  EXPECT_EQ(reader.convergence_slots(), 5);
}

TEST(Reader, WindowedRatios) {
  ReaderController::Config cfg;
  cfg.stats_window = 4;
  ReaderController reader{cfg};
  reader.register_tag(1, 2);
  reader.close_slot({.decoded_tid = 1});
  reader.close_slot({});
  reader.close_slot({.collision_detected = true});
  reader.close_slot({.decoded_tid = 1});
  EXPECT_DOUBLE_EQ(reader.non_empty_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(reader.collision_ratio(), 0.25);
}

TEST(Reader, ResetClearsStateAndBroadcastsReset) {
  ReaderController reader;
  reader.register_tag(1, 2);
  reader.close_slot({.decoded_tid = 1});
  reader.request_reset();
  const auto cmd = reader.close_slot({});
  EXPECT_TRUE(cmd.reset);
  EXPECT_EQ(reader.slot_index(), 0);
  EXPECT_FALSE(reader.converged());
}

TEST(Reader, FutureCollisionAvoidanceBlocksInfeasibleNewTag) {
  // Paper Sec. 5.6 example: tags A and B (period 4) settled at offsets 2
  // and 3... here scaled down: two period-2 tags settle on both residues,
  // then a period-1 tag C arrives — no viable offset exists.
  ReaderController reader;
  reader.register_tag(1, 2);
  reader.register_tag(2, 2);
  reader.register_tag(3, 1);
  // Settle tag 1 at offset 0 (slot 0) and tag 2 at offset 1 (slot 1).
  EXPECT_TRUE(reader.close_slot({.decoded_tid = 1}).ack);
  EXPECT_TRUE(reader.close_slot({.decoded_tid = 2}).ack);
  // Tag 3 decodes cleanly (capture) at slot 2 — but has no viable offset.
  const auto cmd = reader.close_slot({.decoded_tid = 3});
  EXPECT_FALSE(cmd.ack);
  // A victim was selected: one of the settled tags now receives forced
  // NACKs on its clean transmissions until it migrates.
  bool victim_nacked = false;
  for (int s = 0; s < 8 && !victim_nacked; ++s) {
    const auto c = reader.close_slot({.decoded_tid = (s % 2) ? 2 : 1});
    if (!c.ack) victim_nacked = true;
  }
  EXPECT_TRUE(victim_nacked);
}

TEST(Reader, WithoutAvoidanceAcksInfeasibleTag) {
  ReaderController::Config cfg;
  cfg.future_collision_avoidance = false;
  ReaderController reader{cfg};
  reader.register_tag(1, 2);
  reader.register_tag(2, 2);
  reader.register_tag(3, 1);
  reader.close_slot({.decoded_tid = 1});
  reader.close_slot({.decoded_tid = 2});
  EXPECT_TRUE(reader.close_slot({.decoded_tid = 3}).ack);
}

TEST(Reader, RejectsBadPeriod) {
  ReaderController reader;
  EXPECT_THROW(reader.register_tag(1, 5), std::invalid_argument);
}

// ------------------------------------------------------------ SlotNetwork

SlotNetwork::Params quiet_params(std::uint64_t seed) {
  SlotNetwork::Params p;
  p.seed = seed;
  p.capture_prob = 0.3;
  return p;
}

TEST(SlotNetwork, ConvergesToCollisionFreeSchedule) {
  // Appendix C: from any initial state the network reaches the absorbing
  // collision-free state. Verify for several seeds on the Table-1-like mix.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SlotNetwork net{quiet_params(seed),
                    {{.tid = 1, .period = 2},
                     {.tid = 2, .period = 4},
                     {.tid = 3, .period = 8},
                     {.tid = 4, .period = 8}}};
    const auto conv = net.measure_convergence(5000);
    ASSERT_TRUE(conv.has_value()) << "seed " << seed;
    EXPECT_TRUE(net.all_settled_collision_free()) << "seed " << seed;
  }
}

TEST(SlotNetwork, ConvergedScheduleStaysCleanWithoutLosses) {
  SlotNetwork::Params p = quiet_params(9);
  SlotNetwork net{p,
                  {{.tid = 1, .period = 2, .dl_loss = 0.0, .ul_loss = 0.0},
                   {.tid = 2, .period = 4, .dl_loss = 0.0, .ul_loss = 0.0},
                   {.tid = 3, .period = 4, .dl_loss = 0.0, .ul_loss = 0.0}}};
  ASSERT_TRUE(net.measure_convergence(5000).has_value());
  const auto records = net.run(500);
  for (const auto& r : records) {
    EXPECT_FALSE(r.collision_truth) << "slot " << r.slot;
  }
}

TEST(SlotNetwork, FullUtilizationFillsEverySlot) {
  SlotNetwork::Params p = quiet_params(33);
  SlotNetwork net{p,
                  {{.tid = 1, .period = 2, .dl_loss = 0.0, .ul_loss = 0.0},
                   {.tid = 2, .period = 2, .dl_loss = 0.0, .ul_loss = 0.0}}};
  ASSERT_TRUE(net.measure_convergence(5000).has_value());
  const auto records = net.run(100);
  for (const auto& r : records) {
    EXPECT_EQ(r.transmitters.size(), 1u) << "slot " << r.slot;
  }
}

TEST(SlotNetwork, HigherUtilizationConvergesSlower) {
  // Fig. 15a trend. Use medians over seeds to damp variance.
  const auto median_convergence = [](const ExperimentConfig& cfg) {
    std::vector<double> times;
    for (std::uint64_t seed = 1; seed <= 11; ++seed) {
      SlotNetwork net{quiet_params(seed * 17), cfg.tag_specs()};
      const auto conv = net.measure_convergence(30000);
      if (conv) times.push_back(static_cast<double>(*conv));
    }
    std::sort(times.begin(), times.end());
    return times.empty() ? 1e18 : times[times.size() / 2];
  };
  const double low = median_convergence(table3_config("c1"));
  const double high = median_convergence(table3_config("c4"));
  EXPECT_LT(low, high);
}

TEST(SlotNetwork, LateArrivingTagIntegrates) {
  SlotNetwork::Params p = quiet_params(55);
  SlotNetwork net{p,
                  {{.tid = 1, .period = 4},
                   {.tid = 2, .period = 4},
                   {.tid = 3, .period = 4, .activation_slot = 200}}};
  net.run(190);  // tags 1, 2 settle
  net.run(800);  // tag 3 arrives and must integrate
  EXPECT_EQ(net.tag_machine(3).state(), TagState::kSettle);
  EXPECT_TRUE(net.all_settled_collision_free());
}

TEST(SlotNetwork, BeaconLossCausesOnlyTransientDisruption) {
  SlotNetwork::Params p = quiet_params(77);
  auto specs = table3_config("c3").tag_specs();
  for (auto& s : specs) s.dl_loss = 0.002;  // elevated beacon loss
  SlotNetwork net{p, specs};
  ASSERT_TRUE(net.measure_convergence(30000).has_value());
  // Long run: collisions happen but stay rare.
  std::int64_t collisions = 0;
  const std::int64_t slots = 4000;
  for (std::int64_t i = 0; i < slots; ++i) {
    if (net.step().collision_truth) ++collisions;
  }
  EXPECT_LT(static_cast<double>(collisions) / slots, 0.15);
}

TEST(SlotNetwork, UnknownTagLookupThrows) {
  SlotNetwork net{quiet_params(1), {{.tid = 1, .period = 2}}};
  EXPECT_THROW(net.tag_machine(99), std::out_of_range);
}


// ------------------------------------------------- Regression scenarios

TEST(TagSm, GatedFreshTagRepicksOffsetInsteadOfDeadlocking) {
  // Regression: a newly arrived tag whose random offset lands on an
  // occupied (non-EMPTY) slot must search for another offset. Without the
  // re-pick it can never transmit, so it never receives the NACK that
  // would otherwise drive migration — a permanent deadlock.
  TagStateMachine::Config c;
  c.period = 8;
  c.empty_gating = true;
  TagStateMachine sm{c, 23};
  const int first_offset = sm.offset();
  bool offset_changed = false;
  for (int s = 0; s < 64; ++s) {
    sm.on_beacon(kNack);  // never EMPTY
    if (sm.offset() != first_offset) offset_changed = true;
  }
  EXPECT_TRUE(offset_changed);
}

TEST(SlotNetwork, LateTagWithLongPeriodIntegratesOnBusyChannel) {
  // Regression for the Eq. 4 per-tag probe + gated re-pick: long-period
  // late arrivals must find the free capacity of a mostly-busy channel.
  SlotNetwork::Params p = quiet_params(5);
  SlotNetwork net{p, {{.tid = 1, .period = 8},
                      {.tid = 2, .period = 8},
                      {.tid = 3, .period = 8},
                      {.tid = 4, .period = 16},
                      {.tid = 5, .period = 32, .activation_slot = 100},
                      {.tid = 6, .period = 32, .activation_slot = 120},
                      {.tid = 7, .period = 32, .activation_slot = 140}}};
  net.run(2500);
  int settled = 0;
  for (int tid = 5; tid <= 7; ++tid) {
    settled += net.tag_machine(tid).state() == TagState::kSettle;
  }
  EXPECT_GE(settled, 2);  // all three in most seeds; tolerate one straggler
}

TEST(SlotNetwork, EmptyBeaconsStillOfferedOnPartiallyBusyChannel) {
  // The per-tag Eq. 4 probe must leave genuinely free slots marked EMPTY
  // even when the channel is mostly occupied (an "any packet" probe marks
  // nearly everything busy).
  SlotNetwork::Params p = quiet_params(9);
  SlotNetwork net{p, {{.tid = 1, .period = 2},
                      {.tid = 2, .period = 4}}};  // U = 0.75
  net.run(200);  // settle
  int empty = 0;
  for (int s = 0; s < 400; ++s) {
    if (net.step().beacon.empty) ++empty;
  }
  // One slot in four is free; the EMPTY flag should appear at roughly that
  // rate (within noise).
  EXPECT_GT(empty, 50);
}

// ------------------------------------------------- Appendix C, exactly

TEST(MarkovTheory, ChainIsAbsorbingForSmallNetworks) {
  for (auto periods : {std::vector<int>{2, 2}, std::vector<int>{2, 4},
                       std::vector<int>{4, 4}, std::vector<int>{2, 4, 4}}) {
    MarkovAnalysis mk{{periods, 3}};
    EXPECT_GT(mk.absorbing_count(), 0u);
    EXPECT_TRUE(mk.is_absorbing_chain())
        << "period set starting with " << periods.front();
  }
}

TEST(MarkovTheory, AbsorbingStatesAreExactlyConflictFreeSettles) {
  MarkovAnalysis mk{{{2, 2}, 3}};
  // Two period-2 tags: absorbing iff both settled, counters 0, offsets
  // differ -> 2 offset patterns x 2 phases = 4 states.
  EXPECT_EQ(mk.absorbing_count(), 4u);
  std::size_t checked = 0;
  for (std::size_t s = 0; s < mk.state_count(); ++s) {
    if (!mk.is_absorbing(s)) continue;
    const auto view = mk.decode(s);
    EXPECT_NE(view.tags[0].offset, view.tags[1].offset);
    EXPECT_TRUE(view.tags[0].settled && view.tags[1].settled);
    ++checked;
  }
  EXPECT_EQ(checked, 4u);
}

TEST(MarkovTheory, ExpectedAbsorptionMatchesSimulation) {
  // Closed-form E[T] from the fundamental matrix vs the slot simulator
  // under Appendix-C assumptions. The simulator spends one extra bootstrap
  // slot (the first beacon precedes any feedback).
  for (auto periods : {std::vector<int>{2, 2}, std::vector<int>{2, 4}}) {
    MarkovAnalysis mk{{periods, 3}};
    const double theory = mk.expected_absorption_time();
    double sum = 0.0;
    const int runs = 500;
    for (int seed = 1; seed <= runs; ++seed) {
      SlotNetwork::Params sp;
      sp.seed = static_cast<std::uint64_t>(seed) * 31 + 1;
      sp.capture_prob = 0.0;
      sp.collision_detect_prob = 1.0;
      sp.false_collision_prob = 0.0;
      sp.empty_gating = false;
      sp.reader.future_collision_avoidance = false;
      std::vector<SlotNetwork::TagSpec> specs;
      for (std::size_t i = 0; i < periods.size(); ++i) {
        specs.push_back({.tid = static_cast<int>(i) + 1,
                         .period = periods[i],
                         .dl_loss = 0.0,
                         .ul_loss = 0.0});
      }
      SlotNetwork net{sp, specs};
      long slots = 0;
      while (!net.all_settled_collision_free() && slots < 100000) {
        net.step();
        ++slots;
      }
      sum += static_cast<double>(slots);
    }
    const double empirical = sum / runs;
    EXPECT_NEAR(empirical, theory + 1.0, 0.6)
        << "periods start " << periods.front();
  }
}

TEST(MarkovTheory, LargerNackThresholdSlowsEscapeFromBadSettles) {
  // With both tags settled on the same offset, escape needs N consecutive
  // NACKs: expected absorption grows with N.
  const double n2 =
      MarkovAnalysis{{{2, 2}, 2}}.expected_absorption_time();
  const double n5 =
      MarkovAnalysis{{{2, 2}, 5}}.expected_absorption_time();
  EXPECT_GT(n5, n2 * 0.8);  // fresh starts barely involve counters...
  // ...but a settled-conflict start shows it clearly.
  MarkovAnalysis mk2{{{2, 2}, 2}}, mk5{{{2, 2}, 5}};
  const auto conflicted_start = [](MarkovAnalysis& mk) {
    for (std::size_t s = 0; s < mk.state_count(); ++s) {
      const auto v = mk.decode(s);
      if (v.phase == 0 && v.tags[0].settled && v.tags[1].settled &&
          v.tags[0].offset == 0 && v.tags[1].offset == 0 &&
          v.tags[0].counter == 0 && v.tags[1].counter == 0) {
        return s;
      }
    }
    return static_cast<std::size_t>(0);
  };
  EXPECT_GT(mk5.expected_absorption_from(conflicted_start(mk5)),
            mk2.expected_absorption_from(conflicted_start(mk2)));
}

TEST(MarkovTheory, RejectsInvalidConfigs) {
  EXPECT_THROW((MarkovAnalysis{{{}, 3}}), std::invalid_argument);
  EXPECT_THROW((MarkovAnalysis{{{3}, 3}}), std::invalid_argument);
  EXPECT_THROW((MarkovAnalysis{{{2}, 0}}), std::invalid_argument);
  EXPECT_THROW((MarkovAnalysis{{{32, 32, 32, 32}, 3}}),
               std::invalid_argument);  // state space too large
}

}  // namespace
