// Cross-module integration tests: the MAC protocol running over the real
// waveform channel and receive chain (collisions detected from IQ
// clusters, feedback resolving them), the threaded reader pipeline with
// back-pressure, and the firmware + sensing stack end to end.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/core/reader_controller.hpp"
#include "arachnet/core/tag_firmware.hpp"
#include "arachnet/core/tag_state_machine.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sensing/strain.hpp"
#include "arachnet/sim/event_queue.hpp"

namespace {

using namespace arachnet;

// ------------------------------------------------ waveform-in-the-loop MAC

struct WaveformTag {
  int tid;
  core::TagStateMachine machine;
  double amplitude;
  double phase;
};

// Runs the distributed protocol with the PHY entirely at waveform level:
// transmitting tags' FM0 chips are synthesized into one 500 kS/s slot
// waveform; the reader chain decodes and the IQ-cluster detector flags
// collisions; ACK/NACK feedback drives the state machines.
TEST(WaveformMac, ThreeTagsConvergeOverRealChannel) {
  sim::Rng rng{8};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::RxChain rx{reader::RxChain::Params{}};
  core::ReaderController reader;

  core::TagStateMachine::Config base;
  base.empty_gating = false;
  std::vector<WaveformTag> tags;
  const int periods[3] = {2, 4, 8};  // U = 0.875: room to settle
  const double amps[3] = {0.3, 0.12, 0.05};
  for (int i = 0; i < 3; ++i) {
    auto cfg = base;
    cfg.period = periods[i];
    tags.push_back(WaveformTag{i + 1, core::TagStateMachine{cfg, 40u + i},
                               amps[i], 0.5 + i});
    reader.register_tag(i + 1, periods[i]);
  }

  rx.process(synth.synthesize({}, 0.05, rng));  // settle the chain

  phy::DlCommand beacon{.ack = false, .empty = true, .reset = false};
  const double slot_len = 0.30;  // s: one UL packet + margin at 375 bps
  int clean_streak = 0;
  int slots_run = 0;
  sim::Rng cluster_rng{5};

  const auto all_settled = [&] {
    for (const auto& tag : tags) {
      if (tag.machine.state() != core::TagState::kSettle) return false;
    }
    return true;
  };
  for (int s = 0; s < 250 && !(clean_streak >= 12 && all_settled());
       ++s, ++slots_run) {
    std::vector<acoustic::BackscatterSource> sources;
    std::vector<int> transmitters;
    for (auto& tag : tags) {
      if (tag.machine.on_beacon(beacon)) {
        transmitters.push_back(tag.tid);
        const phy::UlPacket pkt{
            .tid = static_cast<std::uint8_t>(tag.tid),
            .payload = static_cast<std::uint16_t>(0x400 + s)};
        acoustic::BackscatterSource src;
        src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
        src.chip_rate = 375.0;
        src.start_s = 0.02;
        src.amplitude = tag.amplitude;
        src.phase_rad = tag.phase;
        sources.push_back(src);
      }
    }

    rx.clear_packets();
    rx.clear_iq_points();
    rx.resync();  // re-baseline on the quiet reply gap at slot start
    rx.process(synth.synthesize(sources, slot_len, rng));

    core::SlotObservation obs;
    const bool truth_collision = transmitters.size() >= 2;
    obs.collision_detected =
        transmitters.size() >= 1 && rx.collision_detected(cluster_rng);
    if (!rx.packets().empty()) {
      obs.decoded_tid = rx.packets().front().packet.tid;
    }
    // The detector must call real collisions; clean slots may rarely be
    // flagged (conservative), which the protocol tolerates.
    if (truth_collision) {
      EXPECT_TRUE(obs.collision_detected) << "slot " << s;
    }
    beacon = reader.close_slot(obs);
    clean_streak = truth_collision ? 0 : clean_streak + 1;
  }

  EXPECT_LT(slots_run, 250);  // reached 12 consecutive clean slots
  for (auto& tag : tags) {
    EXPECT_EQ(tag.machine.state(), core::TagState::kSettle)
        << "tag " << tag.tid;
  }
}

TEST(WaveformMac, SingleCleanSlotDecodesAndAcks) {
  sim::Rng rng{3};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::RxChain rx{reader::RxChain::Params{}};
  rx.process(synth.synthesize({}, 0.05, rng));

  const phy::UlPacket pkt{.tid = 7, .payload = 0x2AB};
  acoustic::BackscatterSource src;
  src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  src.chip_rate = 375.0;
  src.start_s = 0.02;
  src.amplitude = 0.1;
  src.phase_rad = 1.0;
  rx.clear_iq_points();
  rx.process(synth.synthesize({src}, 0.3, rng));

  ASSERT_EQ(rx.packets().size(), 1u);
  EXPECT_EQ(rx.packets().front().packet, pkt);
  sim::Rng crng{9};
  EXPECT_FALSE(rx.collision_detected(crng));

  core::ReaderController reader;
  reader.register_tag(7, 4);
  const auto cmd = reader.close_slot(
      {.decoded_tid = 7, .collision_detected = false});
  EXPECT_TRUE(cmd.ack);
}

// --------------------------------------------------- threaded reader path

TEST(ThreadedPipeline, DdcStageStreamsWithBackPressure) {
  // Producer -> DDC stage -> magnitude-sum stage, connected by bounded
  // ring buffers (the paper's block/back-pressure architecture). The
  // output must equal the single-threaded reference.
  using Block = std::vector<double>;
  using IqBlock = std::vector<std::complex<double>>;

  // Reference computation.
  sim::Rng rng{12};
  std::vector<Block> blocks;
  for (int b = 0; b < 24; ++b) {
    Block block(4096);
    for (std::size_t i = 0; i < block.size(); ++i) {
      block[i] = std::cos(2.0 * 3.14159265 * 90e3 *
                          (b * 4096.0 + i) / 500e3) +
                 rng.normal(0.0, 0.01);
    }
    blocks.push_back(std::move(block));
  }
  dsp::Ddc reference{dsp::Ddc::Params{}};
  double ref_sum = 0.0;
  std::size_t ref_count = 0;
  for (const auto& b : blocks) {
    for (const auto& iq : reference.process(b)) {
      ref_sum += std::abs(iq);
      ++ref_count;
    }
  }

  // Threaded version with deliberately tiny buffers to force back-pressure.
  auto raw = std::make_shared<dsp::RingBuffer<Block>>(2);
  auto iqs = std::make_shared<dsp::RingBuffer<IqBlock>>(2);
  auto sums = std::make_shared<dsp::RingBuffer<double>>(64);
  auto ddc = std::make_shared<dsp::Ddc>(dsp::Ddc::Params{});
  dsp::PipelineStage<Block, IqBlock> ddc_stage{
      raw, iqs,
      [ddc](Block block, const std::function<void(IqBlock)>& emit) {
        emit(ddc->process(block));
      }};
  dsp::PipelineStage<IqBlock, double> mag_stage{
      iqs, sums,
      [](IqBlock block, const std::function<void(double)>& emit) {
        double sum = 0.0;
        for (const auto& iq : block) sum += std::abs(iq);
        emit(sum);
      }};
  ddc_stage.start();
  mag_stage.start();
  for (auto& b : blocks) raw->push(std::move(b));
  raw->close();
  ddc_stage.join();
  mag_stage.join();

  double threaded_sum = 0.0;
  while (const auto v = sums->try_pop()) threaded_sum += *v;
  EXPECT_NEAR(threaded_sum, ref_sum, 1e-9 * (1.0 + std::abs(ref_sum)));
  EXPECT_GT(ref_count, 0u);
}

// --------------------------------------------- firmware + sensing stack

TEST(FullStack, StrainReadingsTravelThroughFirmware) {
  sim::EventQueue queue;
  core::TagFirmware::Params params;
  params.tid = 5;
  params.protocol.period = 2;
  params.protocol.empty_gating = false;
  core::TagFirmware fw{&queue, params, 77};
  fw.set_link(1.9);

  sensing::StrainSensorModule module{sensing::StrainSensorModule::Params{}};
  sim::Rng sensor_rng{31};
  double displacement = -0.10;
  fw.set_sensor([&] { return module.sample(displacement, sensor_rng); });

  std::vector<std::uint16_t> readings;
  fw.on_transmit([&](const phy::UlPacket& pkt, double) {
    readings.push_back(pkt.payload);
  });
  fw.start();
  queue.run_until(10.0);
  ASSERT_TRUE(fw.activated());

  // Sweep displacement across slots; readings must rise.
  for (int s = 0; s < 20; ++s) {
    displacement = -0.10 + s * 0.01;
    queue.schedule_in(0.01, [&] {
      fw.deliver_beacon(phy::DlBeacon{{.ack = true, .empty = true}});
    });
    queue.run_until(queue.now() + 1.0);
  }
  ASSERT_GE(readings.size(), 5u);
  EXPECT_GT(readings.back(), readings.front());
  for (auto code : readings) EXPECT_LT(code, 1u << 12);
}

// -------------------------------------------- deployment-driven topology

TEST(FullStack, DeploymentLinksFeedTheProtocolConsistently) {
  // The calibrated deployment's weakest tag must still clear activation
  // and run the MAC; its charging time bounds the worst-case join delay.
  const auto car = acoustic::Deployment::onvo_l60();
  sim::EventQueue queue;
  core::TagFirmware::Params params;
  params.tid = 11;
  params.protocol.period = 8;
  params.protocol.empty_gating = false;
  core::TagFirmware fw{&queue, params, 123};
  fw.set_link(car.tag_pzt_peak_voltage(11));
  fw.start();
  queue.run_until(70.0);
  ASSERT_TRUE(fw.activated());  // 58 s charge, then operational
  int sent = 0;
  fw.on_transmit([&](const phy::UlPacket&, double) { ++sent; });
  for (int s = 0; s < 40; ++s) {
    queue.schedule_in(0.01, [&] {
      fw.deliver_beacon(phy::DlBeacon{{.ack = true, .empty = true}});
    });
    queue.run_until(queue.now() + 1.0);
  }
  EXPECT_GE(sent, 3);
  EXPECT_EQ(fw.brownouts(), 0);
  EXPECT_TRUE(fw.activated());
}


// ------------------------------------------------------ real-time reader

TEST(RealtimeReader, DecodesAcrossThreadWithBackPressure) {
  sim::Rng rng{42};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  params.input_capacity = 2;  // force back-pressure
  reader::RealtimeReader rtr{params};
  rtr.start();

  // Stream 6 packets in 16k-sample blocks through the threaded path.
  std::vector<phy::UlPacket> sent;
  std::vector<double> stream = synth.synthesize({}, 0.05, rng);
  for (int i = 0; i < 6; ++i) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(i + 1),
                            .payload = static_cast<std::uint16_t>(0x600 + i)};
    sent.push_back(pkt);
    acoustic::BackscatterSource s;
    s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    s.chip_rate = 375.0;
    s.start_s = 0.02;
    s.amplitude = 0.2;
    s.phase_rad = 1.0;
    const auto wave = synth.synthesize({s}, 0.30, rng);
    stream.insert(stream.end(), wave.begin(), wave.end());
  }
  const std::size_t block_size = 16384;
  std::uint64_t total = 0;
  for (std::size_t pos = 0; pos < stream.size(); pos += block_size) {
    const auto end = std::min(stream.size(), pos + block_size);
    ASSERT_TRUE(rtr.submit({stream.begin() + static_cast<std::ptrdiff_t>(pos),
                            stream.begin() + static_cast<std::ptrdiff_t>(end)}));
    total += end - pos;
  }
  rtr.stop();
  EXPECT_EQ(rtr.samples_processed(), total);

  std::vector<phy::UlPacket> received;
  while (const auto p = rtr.poll_packet()) received.push_back(p->packet);
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i], sent[i]) << "packet " << i;
  }
}

TEST(RealtimeReader, StopWithoutStartIsSafe) {
  reader::RealtimeReader rtr{reader::RealtimeReader::Params{}};
  rtr.stop();  // no worker: must not hang or crash
  EXPECT_FALSE(rtr.poll_packet().has_value());
}

}  // namespace
