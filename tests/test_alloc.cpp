// Steady-state allocation audit (telemetry/counting_alloc):
// CountingAllocatorGuard semantics first, then the two contracts the
// guard exists to enforce — after warm-up, the FdmaRxChain decode loop
// and the ReaderService session loop perform zero heap allocations per
// block. Linking this binary pulls the counting global new/delete in
// from the static library (see counting_alloc.hpp), so every heap
// operation in the process is visible to the guard.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/counting_alloc.hpp"

namespace {

using arachnet::telemetry::CountingAllocatorGuard;

// ------------------------------------------------------ guard semantics

TEST(CountingAlloc, CountsScalarNewAndDelete) {
  CountingAllocatorGuard guard;
  auto* p = new int{42};
  EXPECT_GE(guard.allocations(), 1u);
  const std::uint64_t before_delete = guard.deallocations();
  delete p;
  EXPECT_GE(guard.deallocations(), before_delete + 1);
}

TEST(CountingAlloc, CountsArrayAndVectorGrowth) {
  CountingAllocatorGuard guard;
  // The sink keeps the new[]/delete[] pair observable — compilers may
  // elide a provably-unused allocation pair entirely.
  static double* volatile sink;
  sink = new double[17];
  delete[] sink;
  EXPECT_GE(guard.allocations(), 1u);
  EXPECT_GE(guard.deallocations(), 1u);
  const std::uint64_t base = guard.allocations();
  std::vector<int> v;
  v.reserve(100);
  EXPECT_GE(guard.allocations(), base + 1);
  // Growth within reserved capacity must NOT count.
  const std::uint64_t reserved = guard.allocations();
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(guard.allocations(), reserved);
}

TEST(CountingAlloc, CountsAlignedAndNothrowVariants) {
  CountingAllocatorGuard guard;
  struct alignas(64) Wide {
    double lanes[8];
  };
  auto* w = new Wide{};
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 64, 0u);
  delete w;
  auto* q = new (std::nothrow) int{7};
  ASSERT_NE(q, nullptr);
  delete q;
  EXPECT_GE(guard.allocations(), 2u);
  EXPECT_GE(guard.deallocations(), 2u);
}

TEST(CountingAlloc, DeleteNullptrDoesNotCount) {
  CountingAllocatorGuard guard;
  int* p = nullptr;
  delete p;  // must be a no-op, not a counted free
  EXPECT_EQ(guard.deallocations(), 0u);
}

TEST(CountingAlloc, GuardConstructionIsAllocationFree) {
  CountingAllocatorGuard outer;
  {
    CountingAllocatorGuard inner;
    (void)inner;
  }
  EXPECT_EQ(outer.allocations(), 0u);
}

// ------------------------------------------------- FDMA steady state

// One tag per subcarrier (the test_kernels bank-capture recipe).
std::vector<double> fdma_capture(double seconds) {
  arachnet::acoustic::UplinkWaveformSynth synth{
      arachnet::acoustic::UplinkWaveformSynth::Params{}};
  arachnet::sim::Rng rng{101};
  std::vector<arachnet::acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 4; ++k) {
    const arachnet::phy::UlPacket pkt{
        .tid = static_cast<std::uint8_t>(k + 1),
        .payload = static_cast<std::uint16_t>(0x500 + k)};
    arachnet::phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
    arachnet::acoustic::BackscatterSource s;
    s.chips = mod.modulate(
        arachnet::phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * k;
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  return synth.synthesize(srcs, seconds, rng);
}

arachnet::reader::FdmaRxChain::Params bank_params(
    arachnet::reader::FdmaRxChain::BankPolicy bank) {
  arachnet::reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = 1;  // sequential: the audit owns every allocation it sees
  fp.kernels = arachnet::dsp::KernelPolicy::kSimd;
  fp.bank = bank;
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  return fp;
}

void expect_steady_state_clean(
    arachnet::reader::FdmaRxChain::BankPolicy bank) {
  arachnet::reader::FdmaRxChain chain{bank_params(bank)};
  ASSERT_EQ(chain.active_bank(), bank);
  const auto wave = fdma_capture(0.3);
  constexpr std::size_t kBlock = 10000;  // 20 ms at 500 kS/s
  std::vector<arachnet::reader::RxPacket> drained;
  std::size_t packets = 0;
  // Warm-up pass: scratch buffers, packet lists and the drain vector all
  // grow to their high-water marks here.
  for (std::size_t off = 0; off < wave.size(); off += kBlock) {
    chain.process(wave.data() + off, std::min(kBlock, wave.size() - off));
    packets += chain.drain_packets(drained);
  }
  ASSERT_GE(packets, 4u) << "warm-up must decode real packets";
  // Measured pass: the identical block schedule (and, since the chain
  // carries its DSP state, live decodes) must not touch the heap.
  CountingAllocatorGuard guard;
  packets = 0;
  for (std::size_t off = 0; off < wave.size(); off += kBlock) {
    chain.process(wave.data() + off, std::min(kBlock, wave.size() - off));
    packets += chain.drain_packets(drained);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "per-block decode loop allocated in steady state";
  EXPECT_EQ(guard.deallocations(), 0u);
  EXPECT_GE(packets, 4u) << "measured pass must decode real packets";
}

TEST(SteadyStateAlloc, FdmaChannelizerBankDecodeLoopIsAllocationFree) {
  expect_steady_state_clean(
      arachnet::reader::FdmaRxChain::BankPolicy::kChannelizer);
}

TEST(SteadyStateAlloc, FdmaPerChannelBankDecodeLoopIsAllocationFree) {
  expect_steady_state_clean(
      arachnet::reader::FdmaRxChain::BankPolicy::kPerChannel);
}

// ---------------------------------------------- service steady state

// Baseband single-packet capture (what a service session's single-channel
// RxChain decodes).
std::vector<double> baseband_capture() {
  arachnet::acoustic::UplinkWaveformSynth synth{
      arachnet::acoustic::UplinkWaveformSynth::Params{}};
  arachnet::sim::Rng rng{7};
  const arachnet::phy::UlPacket pkt{.tid = 3, .payload = 0x2AB};
  arachnet::acoustic::BackscatterSource s;
  s.chips = arachnet::phy::Fm0Encoder::encode_frame(pkt.serialize());
  s.chip_rate = 375.0;
  s.start_s = 0.02;
  s.amplitude = 0.2;
  s.phase_rad = 1.0;
  return synth.synthesize({s}, 0.28, rng);
}

TEST(SteadyStateAlloc, ServiceSessionLoopIsAllocationFree) {
  using arachnet::reader::service::ReaderService;
  ReaderService service{{.workers = 1}};
  service.start();
  const auto id = service.open_session({.priority = 1});
  ASSERT_TRUE(id.has_value());

  const auto wave = baseband_capture();
  constexpr std::size_t kBlock = 10000;

  // Submits the capture block-by-block through the recycled-buffer path,
  // waiting out each block so the dispatch queue stays at depth <= 1 (the
  // free-list high-water mark the warm-up establishes) and draining the
  // output as it goes. Returns the number of packets consumed.
  const auto stream_capture = [&]() {
    std::size_t consumed = 0;
    std::uint64_t processed =
        service.session_stats(*id)->blocks_processed;
    for (std::size_t off = 0; off < wave.size(); off += kBlock) {
      auto block = service.acquire_block(*id);
      const std::size_t n = std::min(kBlock, wave.size() - off);
      block.resize(n);
      std::copy(wave.data() + off, wave.data() + off + n, block.data());
      ASSERT_TRUE(service.submit(*id, std::move(block)));
      ++processed;
      while (service.session_stats(*id)->blocks_processed < processed) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      while (service.poll_packet(*id).has_value()) ++consumed;
    }
    EXPECT_GE(consumed, 1u) << "session must decode real packets";
  };

  stream_capture();  // warm-up: block pool, chain scratch, queue nodes
  CountingAllocatorGuard guard;
  stream_capture();
  EXPECT_EQ(guard.allocations(), 0u)
      << "service session loop allocated in steady state";

  service.close_session(*id);
  service.stop();
}

}  // namespace
