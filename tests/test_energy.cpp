// Tests for the energy-harvesting chain: diode, multi-stage multiplier,
// supercapacitor, low-voltage cutoff (Appendix A), harvester charging
// dynamics, and the Table-2 tag power model.
#include <gtest/gtest.h>

#include <cmath>

#include "arachnet/energy/cutoff.hpp"
#include "arachnet/energy/diode.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/energy/multiplier.hpp"
#include "arachnet/energy/supercap.hpp"
#include "arachnet/energy/tag_power.hpp"

namespace {

using namespace arachnet::energy;

// -------------------------------------------------------------------- Diode

TEST(Diode, SchottkyDropBelow150mVAt1mA) {
  SchottkyDiode d;
  const double drop = d.forward_drop(1e-3);
  EXPECT_LT(drop, 0.16);  // datasheet: < 0.15 V below 1 mA
  EXPECT_GT(drop, 0.08);
}

TEST(Diode, DropIsMonotoneInCurrent) {
  SchottkyDiode d;
  double prev = 0.0;
  for (double i : {1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    const double v = d.forward_drop(i);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Diode, CurrentVoltageInverseRoundTrip) {
  SchottkyDiode d;
  for (double i : {1e-6, 5e-6, 1e-4, 1e-3}) {
    EXPECT_NEAR(d.forward_current(d.forward_drop(i)), i, i * 1e-6);
  }
}

TEST(Diode, NonPositiveCurrentHasZeroDrop) {
  SchottkyDiode d;
  EXPECT_DOUBLE_EQ(d.forward_drop(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.forward_drop(-1e-3), 0.0);
}

// --------------------------------------------------------------- Multiplier

TEST(Multiplier, OutputGrowsWithStages) {
  double prev = 0.0;
  for (int n : {2, 4, 6, 8}) {
    VoltageMultiplier::Params p;
    p.stages = n;
    VoltageMultiplier mult{p};
    const double v = mult.output_voltage(0.5);
    EXPECT_GT(v, prev) << "stages=" << n;
    prev = v;
  }
}

TEST(Multiplier, GrowthIsSubLinearInStages) {
  // Fig 11a: "the rise is not proportional to the stage number".
  VoltageMultiplier::Params p4, p8;
  p4.stages = 4;
  p8.stages = 8;
  const double v4 = VoltageMultiplier{p4}.output_voltage(0.5);
  const double v8 = VoltageMultiplier{p8}.output_voltage(0.5);
  EXPECT_LT(v8, 2.0 * v4);
  EXPECT_GT(v8, 1.2 * v4);
}

TEST(Multiplier, BoundedByIdealFormula) {
  VoltageMultiplier mult{};
  const double vp = 0.4;
  const double ideal = 2.0 * 8 * vp;  // 2N * Vp with zero drops
  EXPECT_LT(mult.output_voltage(vp), ideal);
  EXPECT_GT(mult.output_voltage(vp), 0.0);
}

TEST(Multiplier, ZeroBelowDiodeThreshold) {
  VoltageMultiplier mult{};
  EXPECT_DOUBLE_EQ(mult.output_voltage(0.0), 0.0);
}

TEST(Multiplier, EfficiencyFallsWithStages) {
  VoltageMultiplier::Params p2, p8;
  p2.stages = 2;
  p8.stages = 8;
  const double e2 = VoltageMultiplier{p2}.efficiency(0.5, 10e-6);
  const double e8 = VoltageMultiplier{p8}.efficiency(0.5, 10e-6);
  EXPECT_GT(e2, 0.0);
  EXPECT_LE(e2, 1.0);
  // More stages droop the input harder, so per-stage voltage falls while
  // diode losses stay, reducing efficiency.
  EXPECT_LT(e8, e2);
}

TEST(Multiplier, InvalidStagesThrows) {
  VoltageMultiplier::Params p;
  p.stages = 0;
  EXPECT_THROW(VoltageMultiplier{p}, std::invalid_argument);
}

// ----------------------------------------------------------------- Supercap

TEST(Supercap, EnergyFormula) {
  Supercapacitor cap;
  cap.set_voltage(2.3);
  EXPECT_NEAR(cap.energy(), 0.5 * 1e-3 * 2.3 * 2.3, 1e-9);  // 2.645 mJ
}

TEST(Supercap, ChargeWithConstantCurrent) {
  Supercapacitor::Params p;
  p.leakage_coeff_ua = 0.0;
  Supercapacitor cap{p};
  cap.apply_current(1e-3, 1.0);  // 1 mA for 1 s into 1 mF -> 1 V
  EXPECT_NEAR(cap.voltage(), 1.0, 1e-6);
}

TEST(Supercap, LeakageDischargesOverTime) {
  Supercapacitor cap;
  cap.set_voltage(2.3);
  for (int i = 0; i < 600; ++i) cap.apply_current(0.0, 1.0);  // 10 minutes
  EXPECT_LT(cap.voltage(), 2.3);
  EXPECT_GT(cap.voltage(), 0.5);  // leakage is slow
}

TEST(Supercap, VoltageFloorsAtZero) {
  Supercapacitor cap;
  cap.set_voltage(0.1);
  cap.apply_current(-1.0, 10.0);
  EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(Supercap, DrawEnergySuccessAndFailure) {
  Supercapacitor cap;
  cap.set_voltage(2.0);
  const double half = cap.energy() / 2.0;
  EXPECT_TRUE(cap.draw_energy(half));
  EXPECT_NEAR(cap.voltage(), 2.0 / std::sqrt(2.0), 1e-9);
  EXPECT_FALSE(cap.draw_energy(1.0));  // way more than stored
  EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(Supercap, EnergyToTarget) {
  Supercapacitor cap;
  cap.set_voltage(1.95);
  const double need = cap.energy_to(2.3);
  EXPECT_NEAR(need, 0.5e-3 * (2.3 * 2.3 - 1.95 * 1.95), 1e-9);
  EXPECT_GT(need, 0.0);
}

// ------------------------------------------------------------------- Cutoff

TEST(Cutoff, ThresholdsMatchAppendixA) {
  CutoffCircuit cutoff;
  // VREF=1.24, R1=680k, R2=180k, R3=1M -> HTH 2.31 V, LTH 1.95 V.
  EXPECT_NEAR(cutoff.high_threshold(), 2.3, 0.02);
  EXPECT_NEAR(cutoff.low_threshold(), 1.95, 0.01);
}

TEST(Cutoff, HysteresisSequence) {
  CutoffCircuit cutoff;
  EXPECT_FALSE(cutoff.update(2.0));   // below HTH from cold: stay off
  EXPECT_TRUE(cutoff.update(2.35));   // crosses HTH: engage
  EXPECT_TRUE(cutoff.update(2.1));    // inside band: stay on
  EXPECT_TRUE(cutoff.update(1.96));   // still above LTH
  EXPECT_FALSE(cutoff.update(1.94));  // below LTH: disengage
  EXPECT_FALSE(cutoff.update(2.1));   // inside band from off: stay off
}

TEST(Cutoff, QuiescentBelowOneMicroamp) {
  CutoffCircuit cutoff;
  EXPECT_LT(cutoff.quiescent_power(2.3), 2.3 * 1e-6);
}

// ---------------------------------------------------------------- Harvester

Harvester make_harvester(double vp_open) {
  Harvester h{Harvester::Params{}};
  h.set_pzt_peak_voltage(vp_open);
  return h;
}

TEST(Harvester, ChargeTimeDecreasesWithVoltage) {
  // Find vp values spanning weak to strong links.
  const auto weak = make_harvester(0.30);
  const auto strong = make_harvester(1.5);
  const double t_weak = weak.charge_time(0.0, 2.3);
  const double t_strong = strong.charge_time(0.0, 2.3);
  ASSERT_GT(t_weak, 0.0);
  ASSERT_GT(t_strong, 0.0);
  EXPECT_LT(t_strong, t_weak);
}

TEST(Harvester, UnreachableTargetReportsFailure) {
  const auto h = make_harvester(0.05);  // amplified voltage below threshold
  EXPECT_LT(h.charge_time(0.0, 2.3), 0.0);
}

TEST(Harvester, ResumeFromLthIsMuchFasterThanColdStart) {
  const auto h = make_harvester(0.5);
  const double cold = h.charge_time(0.0, 2.3);
  const double resume = h.charge_time(1.95, 2.3);
  ASSERT_GT(cold, 0.0);
  ASSERT_GT(resume, 0.0);
  EXPECT_LT(resume, 0.5 * cold);
}

TEST(Harvester, StepEngagesCutoffWhenCharged) {
  auto h = make_harvester(1.5);
  for (int i = 0; i < 20000 && !h.mcu_powered(); ++i) h.step(1e-2);
  EXPECT_TRUE(h.mcu_powered());
  EXPECT_GE(h.cap_voltage(), 1.95);
}

TEST(Harvester, McuLoadDischargesWhenHarvestIsWeak) {
  auto h = make_harvester(0.35);
  // Charge up with no load.
  for (int i = 0; i < 400000 && !h.mcu_powered(); ++i) h.step(1e-2);
  ASSERT_TRUE(h.mcu_powered());
  // Now draw far more than the link can deliver.
  h.set_mcu_load(5e-3);
  for (int i = 0; i < 200000 && h.mcu_powered(); ++i) h.step(1e-2);
  EXPECT_FALSE(h.mcu_powered());
  // Cutoff must have disengaged at LTH, not at zero.
  EXPECT_GT(h.cap_voltage(), 1.5);
}

TEST(Harvester, NetChargingPowerMatchesEnergyOverTime) {
  const auto h = make_harvester(1.0);
  const double t = h.charge_time(0.0, 2.3);
  ASSERT_GT(t, 0.0);
  const double expected = 0.5e-3 * 2.3 * 2.3 / t;
  EXPECT_NEAR(h.net_charging_power(2.3), expected, expected * 0.02);
}

// ---------------------------------------------------------------- Tag power

TEST(TagPower, Table2TotalsReproduced) {
  const TagPowerModel model;
  EXPECT_NEAR(model.power_uw(TagMode::kRx), 24.8, 1e-9);
  EXPECT_NEAR(model.power_uw(TagMode::kTx), 51.0, 1e-9);
  EXPECT_NEAR(model.power_uw(TagMode::kIdle), 7.6, 1e-9);
}

TEST(TagPower, Table2CurrentSplit) {
  const TagPowerModel model;
  EXPECT_NEAR(model.mcu_current_ua(TagMode::kRx), 6.4, 1e-12);
  EXPECT_NEAR(model.total_current_ua(TagMode::kRx), 12.4, 1e-12);
  EXPECT_NEAR(model.mcu_current_ua(TagMode::kTx), 4.7, 1e-12);
  EXPECT_NEAR(model.total_current_ua(TagMode::kTx), 25.5, 1e-12);
  EXPECT_NEAR(model.mcu_current_ua(TagMode::kIdle), 0.6, 1e-12);
  EXPECT_NEAR(model.total_current_ua(TagMode::kIdle), 3.8, 1e-12);
}

TEST(TagPower, InterruptDrivenSavingOver80Percent) {
  const TagPowerModel model;
  EXPECT_GT(model.mcu_saving_vs_active(TagMode::kRx), 0.80);
  EXPECT_GT(model.mcu_saving_vs_active(TagMode::kTx), 0.80);
}

TEST(TagPower, TxExceedsChargingBudgetOfWeakestTag) {
  // The paper notes TX (51 uW) exceeds the weakest net charging power
  // (47.1 uW), forcing duty-cycled operation — the design holds because
  // IDLE (7.6 uW) is far below it.
  const TagPowerModel model;
  EXPECT_GT(model.power_uw(TagMode::kTx), 47.1);
  EXPECT_LT(model.power_uw(TagMode::kIdle), 47.1);
}

TEST(PowerMeter, AccumulatesEnergyPerMode) {
  PowerMeter meter;
  meter.accumulate(TagMode::kIdle, 10.0);
  meter.accumulate(TagMode::kRx, 1.0);
  meter.accumulate(TagMode::kTx, 0.5);
  EXPECT_DOUBLE_EQ(meter.time_in(TagMode::kIdle), 10.0);
  EXPECT_NEAR(meter.energy_in(TagMode::kRx), 24.8e-6, 1e-12);
  EXPECT_NEAR(meter.total_energy(), 10.0 * 7.6e-6 + 24.8e-6 + 0.5 * 51.0e-6,
              1e-12);
  EXPECT_NEAR(meter.average_power(), meter.total_energy() / 11.5, 1e-15);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.total_time(), 0.0);
}

TEST(PowerMeter, RejectsNegativeDuration) {
  PowerMeter meter;
  EXPECT_THROW(meter.accumulate(TagMode::kRx, -1.0), std::invalid_argument);
}

}  // namespace
