// Property-based sweeps (parameterized gtest): invariants that must hold
// across whole parameter ranges rather than at hand-picked points —
// line-code round trips under jitter at every rate, protocol convergence
// for random feasible workloads, energy-chain monotonicity, and CRC
// burst-error detection.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arachnet/core/slot_network.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/mcu/dl_demodulator.hpp"
#include "arachnet/phy/crc.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/pie.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;

// ---------------------------------------------------- FM0 under jitter

class Fm0JitterSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Fm0JitterSweep, RoundTripSurvivesTimingJitter) {
  const auto [rate, jitter] = GetParam();
  sim::Rng rng{static_cast<std::uint64_t>(rate * 1000 + jitter * 100)};
  const double chip = 1.0 / rate;
  for (int trial = 0; trial < 40; ++trial) {
    phy::BitVector data;
    for (int i = 0; i < 32; ++i) data.push_back(rng.bernoulli(0.5));
    const auto chips = phy::Fm0Encoder::encode(data);
    std::vector<double> runs;
    bool level = chips[0];
    double run = chip * rng.uniform(1.0 - jitter, 1.0 + jitter);
    for (std::size_t i = 1; i < chips.size(); ++i) {
      if (chips[i] == level) {
        run += chip * rng.uniform(1.0 - jitter, 1.0 + jitter);
      } else {
        runs.push_back(run);
        run = chip * rng.uniform(1.0 - jitter, 1.0 + jitter);
        level = chips[i];
      }
    }
    runs.push_back(run);
    const auto decoded = phy::Fm0Decoder::decode_runs(runs, chip);
    ASSERT_TRUE(decoded.has_value())
        << "rate " << rate << " jitter " << jitter;
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperRates, Fm0JitterSweep,
    ::testing::Combine(::testing::Values(93.75, 187.5, 375.0, 750.0, 1500.0,
                                         3000.0),
                       ::testing::Values(0.0, 0.05, 0.12)));

// ---------------------------------------------------- PIE under jitter

class PieJitterSweep : public ::testing::TestWithParam<double> {};

TEST_P(PieJitterSweep, PulseClassificationStable) {
  const double jitter = GetParam();
  sim::Rng rng{99};
  const double chip = 1.0 / 250.0;
  for (int trial = 0; trial < 200; ++trial) {
    const bool bit = rng.bernoulli(0.5);
    const double nominal = bit ? 2.0 * chip : chip;
    const double measured = nominal * rng.uniform(1.0 - jitter, 1.0 + jitter);
    const auto decoded = phy::PieDecoder::classify_pulse(measured, chip);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, bit);
  }
}

INSTANTIATE_TEST_SUITE_P(JitterLevels, PieJitterSweep,
                         ::testing::Values(0.0, 0.05, 0.10, 0.20));

// ------------------------------------------------ UL packet round trips

class PacketSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacketSweep, SerializeParseRoundTripThroughFm0) {
  const int tid = GetParam();
  sim::Rng rng{static_cast<std::uint64_t>(tid) + 1};
  for (int trial = 0; trial < 64; ++trial) {
    const phy::UlPacket pkt{
        .tid = static_cast<std::uint8_t>(tid),
        .payload = static_cast<std::uint16_t>(rng.uniform_int(1u << 12))};
    // Through the line code and back.
    const auto chips = phy::Fm0Encoder::encode(pkt.serialize());
    const auto decoded = phy::Fm0Decoder::decode(chips);
    ASSERT_EQ(decoded.violations, 0u);
    const auto parsed = phy::UlPacket::parse(decoded.bits);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pkt);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTids, PacketSweep, ::testing::Range(0, 16));

// -------------------------------------------------- CRC burst detection

class CrcBurstSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrcBurstSweep, DetectsBurstsUpToEightBits) {
  // CRC-8 detects all burst errors of length <= 8.
  const int burst_len = GetParam();
  sim::Rng rng{static_cast<std::uint64_t>(burst_len) * 31};
  for (int trial = 0; trial < 200; ++trial) {
    phy::BitVector bits;
    for (int i = 0; i < 16; ++i) bits.push_back(rng.bernoulli(0.5));
    const auto reference = phy::crc8_bits(bits);
    const auto start = rng.uniform_int(bits.size() - burst_len + 1);
    phy::BitVector corrupted;
    bool any_flip = false;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bool b = bits[i];
      if (i >= start && i < start + static_cast<std::size_t>(burst_len)) {
        // Flip the endpoints always; interior bits randomly (a burst).
        const bool flip = (i == start ||
                           i + 1 == start + static_cast<std::size_t>(burst_len))
                              ? true
                              : rng.bernoulli(0.5);
        if (flip) {
          b = !b;
          any_flip = true;
        }
      }
      corrupted.push_back(b);
    }
    ASSERT_TRUE(any_flip);
    EXPECT_NE(phy::crc8_bits(corrupted), reference)
        << "burst " << burst_len << " at " << start;
  }
}

INSTANTIATE_TEST_SUITE_P(BurstLengths, CrcBurstSweep, ::testing::Range(1, 9));

// ----------------------------------------- Convergence as a property

struct RandomWorkload {
  std::uint64_t seed;
};

class ConvergenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvergenceSweep, RandomFeasibleWorkloadConverges) {
  // Appendix C: any workload with U <= 1 reaches the absorbing
  // collision-free state. Generate a random period mix with U <= 0.95 and
  // verify.
  sim::Rng rng{GetParam()};
  std::vector<core::SlotNetwork::TagSpec> specs;
  double util = 0.0;
  int tid = 1;
  for (int attempt = 0; attempt < 60 && specs.size() < 12; ++attempt) {
    const int period = 1 << (1 + rng.uniform_int(5));  // 2..32
    if (util + 1.0 / period > 0.95) continue;  // draw again (smaller share)
    util += 1.0 / period;
    // Appendix C's model assumes negligible beacon loss; disable the
    // stochastic disturbances so the absorbing state, once reached, holds.
    specs.push_back(
        {.tid = tid++, .period = period, .dl_loss = 0.0, .ul_loss = 0.0});
  }
  ASSERT_GE(specs.size(), 2u);

  core::SlotNetwork::Params params;
  params.seed = GetParam() * 31 + 7;
  core::SlotNetwork net{params, specs};
  const auto conv = net.measure_convergence(40000);
  ASSERT_TRUE(conv.has_value()) << "did not converge, U=" << util;
  // The reader's 32-clean-slot criterion can fire while a long-period tag
  // is still quietly migrating; give stragglers time, then the schedule
  // must be absorbing.
  net.run(4000);
  EXPECT_TRUE(net.all_settled_collision_free());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----------------------------------------- Energy chain monotonicities

class HarvesterSweep : public ::testing::TestWithParam<double> {};

TEST_P(HarvesterSweep, MoreVoltageNeverChargesSlower) {
  const double vp = GetParam();
  energy::Harvester a{energy::Harvester::Params{}};
  energy::Harvester b{energy::Harvester::Params{}};
  a.set_pzt_peak_voltage(vp);
  b.set_pzt_peak_voltage(vp * 1.25);
  const double ta = a.charge_time(0.0, 2.306);
  const double tb = b.charge_time(0.0, 2.306);
  if (ta > 0.0) {
    ASSERT_GT(tb, 0.0);
    EXPECT_LE(tb, ta * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(LinkStrengths, HarvesterSweep,
                         ::testing::Values(0.3, 0.4, 0.6, 0.9, 1.4, 1.9));

class MultiplierSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierSweep, OutputMonotoneInInputVoltage) {
  energy::VoltageMultiplier::Params p;
  p.stages = GetParam();
  const energy::VoltageMultiplier mult{p};
  double prev = -1.0;
  for (double vp = 0.05; vp < 2.5; vp += 0.05) {
    const double v = mult.output_voltage(vp);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(StageCounts, MultiplierSweep,
                         ::testing::Values(1, 2, 4, 6, 8, 12));

// --------------------------------------------- DL loss monotone in rate

class DlRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DlRateSweep, LossWithinUnitIntervalAndReproducible) {
  const double rate = GetParam();
  mcu::DlDemodulator::Params p;
  p.chip_rate = rate;
  const mcu::DlDemodulator demod{p};
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = true}};
  sim::Rng a{5}, b{5};
  const double la = demod.loss_rate(beacon, 2.0, a, 500);
  const double lb = demod.loss_rate(beacon, 2.0, b, 500);
  EXPECT_GE(la, 0.0);
  EXPECT_LE(la, 1.0);
  EXPECT_DOUBLE_EQ(la, lb);  // deterministic given the seed
}

INSTANTIATE_TEST_SUITE_P(Rates, DlRateSweep,
                         ::testing::Values(125.0, 250.0, 500.0, 1000.0,
                                           2000.0));

}  // namespace
