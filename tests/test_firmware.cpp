// Tests for the event-level tag firmware co-simulation: activation from
// harvesting, beacon-driven protocol operation, duty-cycled power
// profile, beacon-loss timeout, and brownout behaviour on weak links.
#include <gtest/gtest.h>

#include <vector>

#include "arachnet/core/tag_firmware.hpp"
#include "arachnet/sim/event_queue.hpp"

namespace {

using namespace arachnet;
using core::TagFirmware;
using core::TagState;
using energy::TagMode;

struct FirmwareHarness {
  sim::EventQueue queue;
  TagFirmware::Params params;
  std::vector<phy::UlPacket> transmitted;

  FirmwareHarness() {
    params.tid = 3;
    params.protocol.period = 2;
    params.protocol.empty_gating = false;
  }

  TagFirmware make(double vp, std::uint64_t seed = 7) {
    TagFirmware fw{&queue, params, seed};
    fw.set_link(vp);
    fw.on_transmit([this](const phy::UlPacket& pkt, double) {
      transmitted.push_back(pkt);
    });
    fw.set_sensor([] { return 0x234; });
    fw.start();
    return fw;
  }

  /// Runs a beaconed slot loop: delivers a beacon every `slot` seconds
  /// with the given command, for `n` slots.
  void run_slots(TagFirmware& fw, int n, const phy::DlCommand& cmd,
                 double slot = 1.0) {
    for (int i = 0; i < n; ++i) {
      const double due = queue.now() + slot;
      queue.schedule_in(slot * 0.01, [&fw, cmd] {
        fw.deliver_beacon(phy::DlBeacon{cmd});
      });
      queue.run_until(due);
    }
  }
};

TEST(Firmware, ActivatesAfterCharging) {
  FirmwareHarness h;
  auto fw = h.make(1.9);  // tag-8-class link: ~4.3 s charge
  EXPECT_FALSE(fw.activated());
  h.queue.run_until(10.0);
  EXPECT_TRUE(fw.activated());
  EXPECT_GE(fw.cap_voltage(), 1.9);
}

TEST(Firmware, WeakLinkNeverActivates) {
  FirmwareHarness h;
  auto fw = h.make(0.05);
  h.queue.run_until(120.0);
  EXPECT_FALSE(fw.activated());
}

TEST(Firmware, RespondsToBeaconsAndSettles) {
  FirmwareHarness h;
  auto fw = h.make(1.9);
  h.queue.run_until(10.0);
  ASSERT_TRUE(fw.activated());
  // ACK every beacon: the tag should transmit per its period and settle.
  h.run_slots(fw, 20, {.ack = true, .empty = true});
  EXPECT_GT(fw.packets_sent(), 3);
  EXPECT_EQ(fw.protocol().state(), TagState::kSettle);
  ASSERT_FALSE(h.transmitted.empty());
  EXPECT_EQ(h.transmitted.front().tid, 3);
  EXPECT_EQ(h.transmitted.front().payload, 0x234);
}

TEST(Firmware, BeaconSilenceTriggersTimeoutMigration) {
  FirmwareHarness h;
  auto fw = h.make(1.9);
  h.queue.run_until(10.0);
  h.run_slots(fw, 10, {.ack = true, .empty = true});
  ASSERT_EQ(fw.protocol().state(), TagState::kSettle);
  // Stop beacons for several slot times: the beacon-loss timer fires.
  h.queue.run_until(h.queue.now() + 5.0);
  EXPECT_EQ(fw.protocol().state(), TagState::kMigrate);
}

TEST(Firmware, DutyCycledPowerProfile) {
  FirmwareHarness h;
  auto fw = h.make(1.9);
  h.queue.run_until(10.0);
  h.run_slots(fw, 30, {.ack = true, .empty = true});
  auto& meter = fw.mcu().meter();
  // The tag spends most time IDLE, a fraction in RX (beacons) and TX.
  EXPECT_GT(meter.time_in(TagMode::kIdle), 0.8 * meter.total_time());
  EXPECT_GT(meter.time_in(TagMode::kRx), 0.0);
  EXPECT_GT(meter.time_in(TagMode::kTx), 0.0);
  // Average power well under continuous-RX power.
  EXPECT_LT(meter.average_power(), 24.8e-6);
  EXPECT_GT(meter.average_power(), 7.6e-6);
}

TEST(Firmware, SustainsOperationOnWeakButSufficientLink) {
  // A tag-11-class link (net charging ~47 uW) must sustain duty-cycled
  // operation: IDLE 7.6 uW baseline with occasional RX/TX bursts.
  FirmwareHarness h;
  h.params.protocol.period = 8;  // modest reporting rate
  auto fw = h.make(0.303);       // tag 11 calibration
  h.queue.run_until(70.0);       // ~58 s charge
  ASSERT_TRUE(fw.activated());
  h.run_slots(fw, 120, {.ack = true, .empty = true});
  EXPECT_TRUE(fw.activated());  // still powered after 2 minutes of slots
  EXPECT_EQ(fw.brownouts(), 0);
  EXPECT_GT(fw.packets_sent(), 5);
}

TEST(Firmware, HeavyLoadOnWeakLinkBrownsOutAndRecovers) {
  FirmwareHarness h;
  h.params.protocol.period = 1;  // transmit every slot: ~51 uW + RX cost
  // Make the analog TX load punishing so the budget clearly cannot hold.
  h.params.mcu.power.analog_tx_ua = 2000.0;
  auto fw = h.make(0.303);
  h.queue.run_until(70.0);
  ASSERT_TRUE(fw.activated());
  h.run_slots(fw, 400, {.ack = true, .empty = true});
  EXPECT_GE(fw.brownouts(), 1);
}

TEST(Firmware, IgnoresBeaconsWhileUnpowered) {
  FirmwareHarness h;
  auto fw = h.make(1.9);
  // Not yet activated: beacons must be ignored silently.
  fw.deliver_beacon(phy::DlBeacon{{.ack = true, .empty = true}});
  h.queue.run_until(1.0);
  EXPECT_EQ(fw.beacons_decoded(), 0);
  EXPECT_EQ(fw.packets_sent(), 0);
}

TEST(Firmware, CountsLostBeacons) {
  FirmwareHarness h;
  // High DL rate makes the VLO demodulator lossy (Fig. 13a mechanism).
  h.params.dl.chip_rate = 2000.0;
  auto fw = h.make(1.9, 21);
  h.queue.run_until(10.0);
  ASSERT_TRUE(fw.activated());
  h.run_slots(fw, 50, {.ack = true, .empty = true});
  EXPECT_GT(fw.beacons_lost(), 5);
}

}  // namespace
