// Tests for the parallel deterministic sweep engine: bit-identical results
// across jobs counts, grid ordering, scratch reuse semantics, the
// NaN-censoring reducers, and the FunctionRef worker-pool overload it is
// built on. The threaded cases run under TSan via the `concurrency` label.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/sim/sweep.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace {

using arachnet::sim::SweepEngine;
using arachnet::sim::TrialScratch;
using arachnet::sim::TrialSpec;

/// A trial whose value depends on the grid cell AND on consuming the
/// per-trial RNG stream, so any cross-trial stream leakage or
/// order-dependence shows up as a changed result.
double rng_sensitive_trial(const TrialSpec& t, arachnet::sim::Rng& rng) {
  double acc = static_cast<double>(t.config) * 1000.0 +
               static_cast<double>(t.seed);
  for (int i = 0; i < 100; ++i) acc += rng.uniform();
  return acc;
}

std::vector<double> run_reference_grid(std::size_t jobs, std::size_t configs,
                                       std::size_t seeds) {
  SweepEngine engine{{.jobs = jobs}};
  return engine.run_grid<double>(
      configs, seeds,
      [](const TrialSpec& t, arachnet::sim::Rng& rng, TrialScratch&) {
        return rng_sensitive_trial(t, rng);
      });
}

TEST(SweepEngine, BitIdenticalAcrossJobCounts) {
  const auto serial = run_reference_grid(1, 5, 8);
  for (std::size_t jobs : {2, 4, 8}) {
    const auto parallel = run_reference_grid(jobs, 5, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(serial[i], parallel[i]) << "trial " << i << " jobs " << jobs;
    }
  }
}

TEST(SweepEngine, RepeatedRunsAreIdentical) {
  const auto a = run_reference_grid(8, 3, 7);
  const auto b = run_reference_grid(8, 3, 7);
  EXPECT_EQ(a, b);
}

TEST(SweepEngine, ResultsComeBackInGridOrder) {
  SweepEngine engine{{.jobs = 4}};
  const std::size_t configs = 4, seeds = 6;
  const auto out = engine.run_grid<std::uint64_t>(
      configs, seeds,
      [](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch&) {
        return static_cast<std::uint64_t>(t.config * 100 + t.seed);
      });
  ASSERT_EQ(out.size(), configs * seeds);
  for (std::size_t c = 0; c < configs; ++c) {
    const auto row = SweepEngine::row(out, seeds, c);
    for (std::size_t s = 0; s < seeds; ++s) {
      EXPECT_EQ(row[s], c * 100 + s);
    }
  }
}

TEST(SweepEngine, TrialSpecGridCoordinatesAreConsistent) {
  SweepEngine engine{{.jobs = 3}};
  std::mutex mu;
  std::set<std::size_t> indices;
  engine.for_each_trial(
      3, 5, [&](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch&) {
        EXPECT_EQ(t.index, t.config * 5 + t.seed);
        EXPECT_EQ(t.rng_stream, t.index);
        std::lock_guard lock{mu};
        indices.insert(t.index);
      });
  // Every cell ran exactly once.
  EXPECT_EQ(indices.size(), 15u);
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), 14u);
}

TEST(SweepEngine, TrialRngMatchesMasterSplit) {
  const std::uint64_t master_seed = 0xfeedULL;
  SweepEngine engine{{.jobs = 2, .master_seed = master_seed}};
  const auto out = engine.run_grid<std::uint64_t>(
      1, 6, [](const TrialSpec&, arachnet::sim::Rng& rng, TrialScratch&) {
        return rng.next_u64();
      });
  const arachnet::sim::Rng master{master_seed};
  for (std::size_t i = 0; i < out.size(); ++i) {
    arachnet::sim::Rng expect = master.split(i);
    EXPECT_EQ(out[i], expect.next_u64()) << i;
  }
}

TEST(SweepEngine, ScratchVectorsAreClearedBetweenTrials) {
  SweepEngine engine{{.jobs = 4}};
  // Each trial poisons the keyed vector; if clearing ever regressed, a
  // later trial on the same slot would observe stale elements.
  const auto sizes = engine.run_grid<std::size_t>(
      2, 32, [](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch& s) {
        auto& v = s.doubles(0);
        const std::size_t seen = v.size();
        v.assign(16 + t.seed, 1.0);
        return seen;
      });
  for (std::size_t seen : sizes) EXPECT_EQ(seen, 0u);
}

TEST(SweepEngine, ScratchArenaIsReusedAcrossTrials) {
  SweepEngine engine{{.jobs = 1}};
  std::size_t after_first = 0;
  engine.for_each_trial(
      1, 16, [&](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch& s) {
        auto span = s.bytes(2048);
        EXPECT_EQ(span.size(), 2048u);
        if (t.index == 0) {
          after_first = s.arena_bytes();
        } else {
          // Same-size requests must not grow the arena after the first
          // trial (the whole point of per-slot scratch reuse).
          EXPECT_EQ(s.arena_bytes(), after_first);
        }
      });
  EXPECT_GT(after_first, 0u);
}

TEST(TrialScratch, ArenaSpansStayValidAcrossGrowth) {
  TrialScratch s;
  auto first = s.make<std::uint64_t>(8);
  for (std::size_t i = 0; i < first.size(); ++i) first[i] = i * 3;
  // Force the arena to add blocks; earlier spans must survive.
  for (int i = 0; i < 8; ++i) (void)s.bytes(1 << (12 + i));
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], i * 3);
}

TEST(TrialScratch, BytesRespectsAlignment) {
  TrialScratch s;
  (void)s.bytes(1);  // misalign the cursor
  auto span = s.bytes(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) % 64, 0u);
}

TEST(SweepEngine, TelemetryCountsTrials) {
  arachnet::telemetry::MetricsRegistry metrics;
  SweepEngine engine{{.jobs = 2, .metrics = &metrics}};
  engine.for_each_trial(
      4, 5, [](const TrialSpec&, arachnet::sim::Rng&, TrialScratch&) {});
  EXPECT_EQ(metrics.counter("sweep.trials").value(), 20u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.trials, 20u);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_GE(stats.wall_ms, 0.0);
  EXPECT_GE(stats.trial_ms_max, 0.0);
}

TEST(SweepEngine, ExceptionsPropagateToCaller) {
  SweepEngine engine{{.jobs = 4}};
  EXPECT_THROW(
      engine.for_each_trial(
          1, 16, [](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch&) {
            if (t.index == 7) throw std::runtime_error{"trial failed"};
          }),
      std::runtime_error);
  // The engine stays usable after a throwing sweep.
  const auto out = engine.run_grid<int>(
      1, 4, [](const TrialSpec& t, arachnet::sim::Rng&, TrialScratch&) {
        return static_cast<int>(t.index);
      });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SweepReducers, SkipNonFiniteSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> samples{10.0, nan, 30.0, 20.0, nan};
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_mean(samples), 20.0);
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_median(samples), 20.0);
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_min(samples), 10.0);
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_max(samples), 30.0);
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_percentile(samples, 0.5), 20.0);
  EXPECT_EQ(arachnet::sim::count_censored(samples), 2u);
}

TEST(SweepReducers, AllCensoredReducesToZero) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> samples{nan, nan};
  EXPECT_DOUBLE_EQ(arachnet::sim::reduce_median(samples), 0.0);
  EXPECT_EQ(arachnet::sim::count_censored(samples), 2u);
}

// ---- FunctionRef / WorkerPool non-allocating overload -------------------

TEST(FunctionRef, InvokesUnderlyingCallable) {
  int hits = 0;
  auto fn = [&](std::size_t i) { hits += static_cast<int>(i); };
  arachnet::dsp::FunctionRef<void(std::size_t)> ref{fn};
  ASSERT_TRUE(static_cast<bool>(ref));
  ref(3);
  ref(4);
  EXPECT_EQ(hits, 7);
  const arachnet::dsp::FunctionRef<void(std::size_t)> null_ref;
  EXPECT_FALSE(static_cast<bool>(null_ref));
}

TEST(WorkerPool, RunInvokesEveryIndexExactlyOnce) {
  arachnet::dsp::WorkerPool pool{3};
  std::vector<std::atomic<int>> counts(64);
  pool.run(counts.size(), [&](std::size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkerPool, MutableCallableStateSurvivesRun) {
  // The FunctionRef overload must reference the caller's callable, not a
  // copy: worker-side mutations have to land in the original object.
  arachnet::dsp::WorkerPool pool{3};
  std::atomic<std::uint64_t> sum{0};
  auto task = [&sum](std::size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  };
  pool.run(100, task);
  EXPECT_EQ(sum.load(), 5050u);
}

}  // namespace
