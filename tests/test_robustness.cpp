// Robustness and failure-injection tests: random-bit fuzzing of the
// framers and decoders (must never crash, never accept corrupted CRC
// packets as different packets), reader-controller belief expiry, the
// harvester overvoltage clamp, and FDMA behaviour under same-subcarrier
// collisions.
#include <gtest/gtest.h>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/core/reader_controller.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/mcu/vlo_clock.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/pie.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;

// ------------------------------------------------------------ framer fuzz

TEST(Fuzz, UlFramerSurvivesRandomBits) {
  sim::Rng rng{101};
  std::size_t accepted = 0;
  phy::UlFramer framer{[&](const phy::UlPacket&) { ++accepted; }};
  for (int i = 0; i < 200000; ++i) framer.push(rng.bernoulli(0.5));
  // Random bits occasionally satisfy preamble+CRC (~2^-16 of preamble
  // hits); what matters is bounded acceptance and no crash.
  EXPECT_LT(accepted, 50u);
}

TEST(Fuzz, DlFramerSurvivesRandomBits) {
  sim::Rng rng{103};
  std::size_t beacons = 0;
  phy::DlFramer framer{[&](const phy::DlBeacon&) { ++beacons; }};
  for (int i = 0; i < 100000; ++i) framer.push(rng.bernoulli(0.5));
  // 6-bit preamble with no CRC: random data frequently frames. The CMD
  // nibble tolerance is a protocol-level property (Sec. 4.2); here we only
  // require it not to crash and to keep consuming.
  EXPECT_GT(beacons, 0u);
}

TEST(Fuzz, Fm0StreamDecoderSurvivesRandomRuns) {
  sim::Rng rng{105};
  std::size_t bits = 0, desyncs = 0;
  reader::Fm0StreamDecoder decoder{
      {1.0 / 375.0, 0.35}, [&](bool) { ++bits; }, [&] { ++desyncs; }};
  for (int i = 0; i < 50000; ++i) {
    decoder.push_run(rng.uniform(0.0, 4.0 / 375.0));
  }
  EXPECT_GT(desyncs, 0u);
  EXPECT_GT(bits, 0u);
}

TEST(Fuzz, RxChainSurvivesPureNoiseWithoutFalsePackets) {
  sim::Rng rng{107};
  acoustic::UplinkWaveformSynth::Params wp;
  wp.noise_sigma = 0.05;  // much hotter than calibrated
  acoustic::UplinkWaveformSynth synth{wp};
  reader::RxChain rx{reader::RxChain::Params{}};
  rx.process(synth.synthesize({}, 2.0, rng));  // 1M samples of noise
  EXPECT_TRUE(rx.packets().empty());
}

TEST(Fuzz, PieDecoderRejectsRandomPulses) {
  sim::Rng rng{109};
  const double chip = 1.0 / 250.0;
  int classified = 0;
  for (int i = 0; i < 10000; ++i) {
    if (phy::PieDecoder::classify_pulse(rng.uniform(0.0, 5.0 * chip), chip)) {
      ++classified;
    }
  }
  // Acceptance windows cover (0.55..1.45) and (1.1..2.9) chips of the
  // 0..5 range: random pulses mostly rejected or benignly classified.
  EXPECT_LT(classified, 7000);
}

// ------------------------------------------- reader controller edge cases

TEST(ReaderEdge, BeliefExpiresWhenOwnerGoesSilent) {
  core::ReaderController reader;
  reader.register_tag(1, 4);
  reader.register_tag(2, 4);
  // Tag 1 settles at offset 0.
  EXPECT_TRUE(reader.close_slot({.decoded_tid = 1}).ack);
  // Tag 1 then vanishes (e.g. brownout) for > 2 periods.
  for (int s = 1; s < 12; ++s) reader.close_slot({});
  // Tag 2 now shows up on tag 1's old residue: the stale belief must not
  // block its admission.
  EXPECT_TRUE(reader.close_slot({.decoded_tid = 2}).ack);
}

TEST(ReaderEdge, UnknownTidDecodeIsAckedButNotTracked) {
  // A decode with a TID the reader never registered (corrupted TID that
  // passed CRC is ~2^-8 rare but possible) must not crash bookkeeping.
  core::ReaderController reader;
  reader.register_tag(1, 4);
  const auto cmd = reader.close_slot({.decoded_tid = 9});
  EXPECT_TRUE(cmd.ack);  // decoded cleanly; reader has no basis to NACK
}

TEST(ReaderEdge, ConsecutiveResetsAreIdempotent) {
  core::ReaderController reader;
  reader.register_tag(1, 2);
  reader.close_slot({.decoded_tid = 1});
  reader.request_reset();
  EXPECT_TRUE(reader.close_slot({}).reset);
  reader.request_reset();
  reader.request_reset();
  EXPECT_TRUE(reader.close_slot({}).reset);
  EXPECT_FALSE(reader.close_slot({}).reset);
  EXPECT_EQ(reader.slot_index(), 1);
}

// ----------------------------------------------------- harvester clamping

TEST(HarvesterEdge, StrongLinkClampsInsteadOfOvercharging) {
  energy::Harvester h{energy::Harvester::Params{}};
  h.set_pzt_peak_voltage(1.9);  // tag-8-class link, Voc ~19 V
  for (int i = 0; i < 30000; ++i) h.step(1e-2);
  EXPECT_LE(h.cap_voltage(), h.params().clamp_voltage + 1e-9);
  EXPECT_TRUE(h.mcu_powered());
}

TEST(HarvesterEdge, ClampKeepsVloInUsableRange) {
  // The clamp exists so the supply-sensitive VLO stays near its reference;
  // at 2.5 V the frequency shift is under 2%.
  mcu::VloClock vlo;
  energy::Harvester h{energy::Harvester::Params{}};
  EXPECT_LT(vlo.frequency(h.params().clamp_voltage) / vlo.frequency(2.0),
            1.02);
}

// --------------------------------------------------- FDMA collision cases

TEST(FdmaEdge, SameSubcarrierCollisionYieldsNoCleanDecode) {
  sim::Rng rng{111};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::FdmaRxChain::Params fp;
  fp.channels = {{3000.0}};
  reader::FdmaRxChain fdma{fp};

  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 2; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload = 0x111};
    phy::SubcarrierModulator mod{{375.0, 3000.0}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.15;
    s.phase_rad = 0.5 + k;
    srcs.push_back(s);
  }
  fdma.process(synth.synthesize(srcs, 0.3, rng));
  // Two tags on ONE subcarrier collide exactly like baseband ARACHNET:
  // the channel must not fabricate a valid packet from the mixture.
  for (const auto& p : fdma.packets(0)) {
    EXPECT_TRUE(p.tid == 1 || p.tid == 2);  // capture effect at most
  }
}

}  // namespace
