// Tests for the baseline protocols: vanilla static slot allocation
// (Sec. 5.2 / Table 1, and its fragility under beacon loss) and the pure
// ALOHA baseline (Appendix B).
#include <gtest/gtest.h>

#include "arachnet/net/aloha.hpp"
#include "arachnet/net/vanilla.hpp"

namespace {

using namespace arachnet::net;

// ----------------------------------------------------------------- Vanilla

TEST(Vanilla, Table1ExampleAllocates) {
  // Tags A(p=2), B(4), C(8), D(8): utilization exactly 1.
  const auto result =
      vanilla_allocate({{1, 2}, {2, 4}, {3, 8}, {4, 8}});
  ASSERT_TRUE(result.has_value());
  const auto grid = schedule_grid(*result);
  ASSERT_EQ(grid.size(), 8u);
  for (const auto& slot : grid) {
    EXPECT_EQ(slot.size(), 1u);  // every slot has exactly one transmitter
  }
}

TEST(Vanilla, AssignmentsRespectPeriods) {
  const auto result = vanilla_allocate({{1, 4}, {2, 4}, {3, 8}});
  ASSERT_TRUE(result.has_value());
  for (const auto& a : *result) {
    EXPECT_GE(a.offset, 0);
    EXPECT_LT(a.offset, a.period);
  }
}

TEST(Vanilla, OverloadedSetFails) {
  // Three period-2 tags: U = 1.5 > 1, impossible.
  EXPECT_FALSE(vanilla_allocate({{1, 2}, {2, 2}, {3, 2}}).has_value());
}

TEST(Vanilla, ExactlyFullSetSucceeds) {
  const auto result = vanilla_allocate({{1, 2}, {2, 2}});
  ASSERT_TRUE(result.has_value());
  EXPECT_NE((*result)[0].offset, (*result)[1].offset);
}

TEST(Vanilla, RejectsBadPeriod) {
  EXPECT_THROW(vanilla_allocate({{1, 3}}), std::invalid_argument);
}

TEST(Vanilla, NoLossMeansNoCollisions) {
  const auto alloc = vanilla_allocate({{1, 2}, {2, 4}, {3, 8}, {4, 8}});
  ASSERT_TRUE(alloc.has_value());
  VanillaSimulator sim{{.dl_loss = 0.0, .seed = 3}, *alloc};
  const auto stats = sim.run(10000);
  EXPECT_EQ(stats.collision_slots, 0);
  EXPECT_EQ(stats.non_empty_slots, stats.slots);  // U = 1: all slots used
}

TEST(Vanilla, BeaconLossCausesPersistentCollisions) {
  // Sec. 5.2 Comment: the static scheme cannot recover from index
  // desynchronization. With a full schedule even small loss rates produce
  // lasting collisions.
  const auto alloc = vanilla_allocate({{1, 2}, {2, 4}, {3, 8}, {4, 8}});
  ASSERT_TRUE(alloc.has_value());
  VanillaSimulator sim{{.dl_loss = 0.01, .seed = 7}, *alloc};
  const auto stats = sim.run(20000);
  EXPECT_GT(stats.collision_ratio(), 0.05);
}

// ------------------------------------------------------------------- ALOHA

std::vector<AlohaSimulator::TagSpec> paper_tags() {
  // Charging times from the calibrated ONVO-L60 deployment, spanning the
  // paper's measured 4.5 - 56.2 s range with only tag 8 fast.
  return {{1, 23.6}, {2, 33.1}, {3, 29.1}, {4, 20.8}, {5, 36.7}, {6, 22.3},
          {7, 38.5}, {8, 4.3},  {9, 34.9}, {10, 35.0}, {11, 58.2}, {12, 36.9}};
}

TEST(Aloha, FastChargingTagTransmitsMost) {
  AlohaSimulator sim{{.seed = 5}, paper_tags()};
  const auto stats = sim.run(10000.0);
  std::int64_t tag8 = 0, tag11 = 0;
  for (const auto& t : stats.per_tag) {
    if (t.tid == 8) tag8 = t.transmissions;
    if (t.tid == 11) tag11 = t.transmissions;
  }
  // Paper: Tag 8 transmits over 11,000 times in 10,000 s.
  EXPECT_GT(tag8, 10000);
  EXPECT_LT(tag11, 1500);
}

TEST(Aloha, OverallSuccessRateNearPaper) {
  AlohaSimulator sim{{.seed = 9}, paper_tags()};
  const auto stats = sim.run(10000.0);
  // Paper: only 34.0% of transmissions are collision-free.
  EXPECT_NEAR(stats.overall_success_rate(), 0.34, 0.12);
}

TEST(Aloha, EveryTagSuffersCollisions) {
  AlohaSimulator sim{{.seed = 11}, paper_tags()};
  const auto stats = sim.run(10000.0);
  for (const auto& t : stats.per_tag) {
    ASSERT_GT(t.transmissions, 0) << "tag " << t.tid;
    // Paper: per-tag success 28.4% - 37.3% — nobody is spared.
    EXPECT_LT(t.success_rate(), 0.6) << "tag " << t.tid;
    EXPECT_GT(t.success_rate(), 0.1) << "tag " << t.tid;
  }
}

TEST(Aloha, SingleTagNeverCollides) {
  AlohaSimulator sim{{.seed = 13}, {{1, 10.0}}};
  const auto stats = sim.run(1000.0);
  EXPECT_GT(stats.total_transmissions(), 0);
  EXPECT_EQ(stats.total_collided(), 0);
}

TEST(Aloha, WarmRechargeMultipliesThroughput) {
  // With recharge at 15.2% of cold charge, steady-state rate is much
  // higher than one packet per cold charge.
  AlohaSimulator sim{{.seed = 17}, {{1, 10.0}}};
  const auto stats = sim.run(1000.0);
  // Cold-rate would be ~100 packets; warm recharge (1.52 s + 0.2 s) gives
  // ~580.
  EXPECT_GT(stats.total_transmissions(), 400);
}

TEST(Aloha, DeterministicForSeed) {
  AlohaSimulator a{{.seed = 21}, paper_tags()};
  AlohaSimulator b{{.seed = 21}, paper_tags()};
  EXPECT_EQ(a.run(2000.0).total_collided(), b.run(2000.0).total_collided());
}

}  // namespace
