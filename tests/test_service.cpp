// Multi-session reader ingest service: dispatch-queue QoS (priority, TTL,
// displacement), admission control and shedding, graceful drain, warm slot
// reuse — plus the RealtimeReader long-run lifecycle regressions (decode
// list drain, restart after stop, FDMA metrics forwarding). Labeled
// `concurrency` in CTest so the whole file runs under TSan via
// `ctest -L concurrency` on a -DARACHNET_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/reader/service/dispatch_queue.hpp"
#include "arachnet/reader/service/reader_service.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace {

using namespace arachnet;
using reader::service::DispatchQueue;
using reader::service::ReaderService;
using reader::service::SessionConfig;

// Renders one 0.28 s uplink window carrying a single packet with the given
// payload (same source parameters as the RealtimeReader shutdown tests).
std::vector<double> packet_wave(std::uint16_t payload, sim::Rng& rng,
                                acoustic::UplinkWaveformSynth& synth) {
  const phy::UlPacket pkt{.tid = 3, .payload = payload};
  acoustic::BackscatterSource s;
  s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  s.chip_rate = 375.0;
  s.start_s = 0.02;
  s.amplitude = 0.2;
  s.phase_rad = 1.0;
  return synth.synthesize({s}, 0.28, rng);
}

// Splits a waveform into DAQ-sized blocks and submits all of them.
template <typename Submit>
void submit_blocks(const std::vector<double>& wave, Submit&& submit) {
  constexpr std::size_t kBlock = 10000;
  for (std::size_t off = 0; off < wave.size(); off += kBlock) {
    const std::size_t len = std::min(kBlock, wave.size() - off);
    submit(std::vector<double>{wave.begin() + off, wave.begin() + off + len});
  }
}

// ---------------------------------------------------------- DispatchQueue

TEST(DispatchQueue, PopsByPriorityThenFifo) {
  DispatchQueue<int> q{8};
  // Interleave two priorities; within one priority arrival order must hold.
  ASSERT_EQ(q.push(1, /*priority=*/1, 0, 0, nullptr),
            DispatchQueue<int>::Push::kAccepted);
  ASSERT_EQ(q.push(10, 5, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);
  ASSERT_EQ(q.push(2, 1, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);
  ASSERT_EQ(q.push(11, 5, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);

  std::vector<int> out;
  std::vector<int> expired;
  ASSERT_TRUE(q.pop_batch(10, 0, &out, &expired));
  EXPECT_TRUE(expired.empty());
  EXPECT_EQ(out, (std::vector<int>{10, 11, 1, 2}));
}

TEST(DispatchQueue, FullQueueDisplacesLowestPriorityNewestOnly) {
  DispatchQueue<int> q{2};
  ASSERT_EQ(q.push(1, 1, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);
  ASSERT_EQ(q.push(2, 1, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);

  // Equal priority never displaces: the newcomer is rejected.
  std::optional<int> displaced;
  EXPECT_EQ(q.push(3, 1, 0, 0, &displaced),
            DispatchQueue<int>::Push::kRejected);
  EXPECT_FALSE(displaced.has_value());

  // A strictly higher priority evicts the lowest-priority *newest* item
  // (2, not 1 — the victim session keeps its FIFO prefix).
  EXPECT_EQ(q.push(4, 9, 0, 0, &displaced),
            DispatchQueue<int>::Push::kDisplaced);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 2);

  std::vector<int> out;
  std::vector<int> expired;
  ASSERT_TRUE(q.pop_batch(10, 0, &out, &expired));
  EXPECT_EQ(out, (std::vector<int>{4, 1}));
}

TEST(DispatchQueue, ExpiredItemsAreHandedBackSeparately) {
  DispatchQueue<int> q{8};
  ASSERT_EQ(q.push(1, 1, /*now_ns=*/100, /*ttl_ns=*/50, nullptr),
            DispatchQueue<int>::Push::kAccepted);  // deadline 150
  ASSERT_EQ(q.push(2, 1, 100, 0, nullptr),
            DispatchQueue<int>::Push::kAccepted);  // never expires

  std::vector<int> out;
  std::vector<int> expired;
  ASSERT_TRUE(q.pop_batch(10, /*now_ns=*/200, &out, &expired));
  EXPECT_EQ(expired, (std::vector<int>{1}));
  EXPECT_EQ(out, (std::vector<int>{2}));
}

TEST(DispatchQueue, CloseDrainsThenStops) {
  DispatchQueue<int> q{4};
  ASSERT_EQ(q.push(7, 1, 0, 0, nullptr), DispatchQueue<int>::Push::kAccepted);
  q.close();
  EXPECT_EQ(q.push(8, 1, 0, 0, nullptr), DispatchQueue<int>::Push::kClosed);

  std::vector<int> out;
  std::vector<int> expired;
  ASSERT_TRUE(q.pop_batch(10, 0, &out, &expired));
  EXPECT_EQ(out, (std::vector<int>{7}));
  out.clear();
  EXPECT_FALSE(q.pop_batch(10, 0, &out, &expired));  // closed and drained
}

// ----------------------------------------------- RealtimeReader lifecycle

TEST(RealtimeReaderLifecycle, SingleChainDecodeListStaysBounded) {
  // Regression: the single-chain worker never drained chain_.packets(), so
  // a long-running session accumulated every decoded packet forever. The
  // list must be empty after each block's drain while the frame total
  // stays monotonic and exact.
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  params.input_capacity = 64;
  reader::RealtimeReader rtr{params};
  rtr.start();

  constexpr int kPackets = 8;
  for (int i = 0; i < kPackets; ++i) {
    const auto wave =
        packet_wave(static_cast<std::uint16_t>(0x900 + i), rng, synth);
    submit_blocks(wave, [&](std::vector<double> b) {
      ASSERT_TRUE(rtr.submit(std::move(b)));
    });
  }
  rtr.stop();

  const auto stats = rtr.stats();
  EXPECT_EQ(stats.chain_buffered_packets, 0u)
      << "decode list must be drained every block";
  ASSERT_EQ(stats.channels.size(), 1u);
  EXPECT_EQ(stats.channels[0].frames_ok,
            static_cast<std::uint64_t>(kPackets));
  // Every decoded packet is still fetchable exactly once.
  std::size_t got = 0;
  while (rtr.wait_packet()) ++got;
  EXPECT_EQ(got, static_cast<std::size_t>(kPackets));
}

TEST(RealtimeReaderLifecycle, RestartAfterStopProcessesNewBlocks) {
  // Regression: start() after stop() silently no-oped (closed queues were
  // never reopened), so a paused reader could never resume. A stop/start
  // pair must behave as a pause: both runs' packets arrive, counters and
  // chain state carry over.
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  params.input_capacity = 64;
  reader::RealtimeReader rtr{params};

  rtr.start();
  submit_blocks(packet_wave(0xA01, rng, synth), [&](std::vector<double> b) {
    ASSERT_TRUE(rtr.submit(std::move(b)));
  });
  rtr.stop();
  EXPECT_FALSE(rtr.submit(std::vector<double>(100, 0.0)))
      << "submit must fail while stopped";

  rtr.start();  // restart: queues reopen, a fresh worker spawns
  submit_blocks(packet_wave(0xA02, rng, synth), [&](std::vector<double> b) {
    ASSERT_TRUE(rtr.submit(std::move(b)));
  });
  rtr.stop();

  std::vector<phy::UlPacket> got;
  while (auto pkt = rtr.wait_packet()) got.push_back(pkt->packet);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].payload, 0xA01);
  EXPECT_EQ(got[1].payload, 0xA02);
  const auto stats = rtr.stats();
  ASSERT_EQ(stats.channels.size(), 1u);
  EXPECT_EQ(stats.channels[0].frames_ok, 2u) << "counters span both runs";
}

TEST(RealtimeReaderLifecycle, FdmaBankInheritsReaderRegistry) {
  // Regression: the constructor forwarded the reader's registry into the
  // FDMA bank through a local Params copy, leaving the *stored*
  // params().fdma->metrics null — introspection disagreed with the live
  // bank. The stored params must reflect the patch.
  telemetry::MetricsRegistry registry;
  reader::RealtimeReader::Params params;
  reader::FdmaRxChain::Params fp;
  fp.channels.push_back({.subcarrier_hz = 30000.0});
  params.fdma = fp;
  params.metrics = &registry;

  reader::RealtimeReader rtr{params};
  ASSERT_TRUE(rtr.params().fdma.has_value());
  EXPECT_EQ(rtr.params().fdma->metrics, &registry);

  // An explicitly bound bank registry is left alone.
  telemetry::MetricsRegistry bank_registry;
  fp.metrics = &bank_registry;
  reader::RealtimeReader::Params params2;
  params2.fdma = fp;
  params2.metrics = &registry;
  reader::RealtimeReader rtr2{params2};
  EXPECT_EQ(rtr2.params().fdma->metrics, &bank_registry);
}

// ------------------------------------------------------------- ReaderService

TEST(ReaderService, AdmissionRejectsBeyondBudgetAndShedsForPriority) {
  telemetry::MetricsRegistry registry;
  ReaderService::Params params;
  params.workers = 1;
  params.sessions_per_core = 2.0;  // cap: 2 active sessions
  params.metrics = &registry;
  ReaderService svc{params};
  svc.start();
  ASSERT_EQ(svc.max_sessions(), 2u);

  SessionConfig low;
  low.priority = 1;
  const auto a = svc.open_session(low);
  const auto b = svc.open_session(low);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  // Same priority over budget: rejected (no strictly-lower victim).
  EXPECT_FALSE(svc.open_session(low).has_value());
  EXPECT_EQ(svc.stats().admissions_rejected, 1u);
  EXPECT_EQ(svc.stats().active_sessions, 2u);

  // Higher priority over budget: the lowest-priority *newest* session (b)
  // is shed to make room.
  SessionConfig high;
  high.priority = 9;
  const auto c = svc.open_session(high);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(svc.stats().sessions_shed, 1u);
  EXPECT_EQ(svc.stats().active_sessions, 2u);

  const auto b_stats = svc.session_stats(*b);
  ASSERT_TRUE(b_stats.has_value());
  EXPECT_TRUE(b_stats->shed);
  EXPECT_TRUE(b_stats->closed);
  EXPECT_FALSE(svc.submit(*b, std::vector<double>(16, 0.0)))
      << "a shed session accepts no further blocks";
  EXPECT_FALSE(svc.wait_packet(*b).has_value())
      << "a shed session's output is closed";
  // The high-priority session is live.
  EXPECT_TRUE(svc.submit(*c, std::vector<double>(16, 0.0)));
  ASSERT_TRUE(a.has_value());  // silence unused warnings on release builds

  // Telemetry mirrors the counters.
  const auto snap = registry.snapshot();
  const auto counter = [&](std::string_view name) -> std::uint64_t {
    for (const auto& cv : snap.counters) {
      if (cv.name == name) return cv.value;
    }
    return 0;
  };
  EXPECT_EQ(counter("session.admission_rejected"), 1u);
  EXPECT_EQ(counter("session.shed"), 1u);
}

TEST(ReaderService, PriorityDisplacementUnderFullDispatchQueue) {
  // Fill the dispatch queue from a low-priority session *before* starting
  // the dispatcher, then push a high-priority session's blocks: each one
  // must displace a queued low-priority block, charged to its owner.
  ReaderService::Params params;
  params.workers = 1;
  params.dispatch_capacity = 4;
  ReaderService svc{params};

  SessionConfig low;
  low.priority = 1;
  low.max_blocks_in_flight = 16;
  SessionConfig high;
  high.priority = 5;
  high.max_blocks_in_flight = 16;
  const auto a = svc.open_session(low);
  const auto b = svc.open_session(high);
  ASSERT_TRUE(a && b);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(svc.submit(*a, std::vector<double>(64, 0.0)));
  }
  EXPECT_EQ(svc.stats().dispatch_depth, 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(svc.submit(*b, std::vector<double>(64, 0.0)))
        << "high priority must displace, not be rejected";
  }
  // All four of a's blocks were evicted pre-decode.
  const auto a_mid = svc.session_stats(*a);
  ASSERT_TRUE(a_mid.has_value());
  EXPECT_EQ(a_mid->blocks_dropped, 4u);

  // An additional low-priority push into the all-high queue is rejected.
  ASSERT_TRUE(svc.submit(*a, std::vector<double>(64, 0.0)) == false);
  EXPECT_EQ(svc.session_stats(*a)->blocks_dropped, 5u);

  svc.start();
  svc.stop();  // drains the queue through the pool

  const auto a_stats = svc.session_stats(*a);
  const auto b_stats = svc.session_stats(*b);
  ASSERT_TRUE(a_stats && b_stats);
  EXPECT_EQ(a_stats->blocks_processed, 0u);
  EXPECT_EQ(b_stats->blocks_processed, 4u);
  EXPECT_EQ(b_stats->blocks_dropped, 0u);
  EXPECT_EQ(svc.stats().blocks_processed, 4u);
  EXPECT_EQ(svc.stats().blocks_dropped, 5u);
}

TEST(ReaderService, TtlExpiryIsCountedAsDropped) {
  // Queue blocks with a 1 ms TTL while the dispatcher is not yet running,
  // let them age past the deadline, then start: they must be dropped as
  // expired, never decoded.
  ReaderService::Params params;
  params.workers = 1;
  ReaderService svc{params};

  SessionConfig cfg;
  cfg.ttl_s = 0.001;
  const auto id = svc.open_session(cfg);
  ASSERT_TRUE(id.has_value());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.submit(*id, std::vector<double>(64, 0.0)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.start();
  svc.stop();

  const auto st = svc.session_stats(*id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->blocks_expired, 3u);
  EXPECT_EQ(st->blocks_dropped, 3u);
  EXPECT_EQ(st->blocks_processed, 0u);
  EXPECT_EQ(svc.stats().blocks_expired, 3u);
}

TEST(ReaderService, StopDrainsEverySessionsQueuedBlocks) {
  // Two sessions with packet-bearing streams; stop() right after the last
  // submit. Every accepted block must still decode and each session's
  // packets must be fetchable from its own output (chains are isolated).
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};

  ReaderService::Params params;
  params.workers = 2;
  params.dispatch_capacity = 256;
  ReaderService svc{params};
  svc.start();

  SessionConfig cfg;
  cfg.max_blocks_in_flight = 64;
  const auto a = svc.open_session(cfg);
  const auto b = svc.open_session(cfg);
  ASSERT_TRUE(a && b);

  submit_blocks(packet_wave(0xB0A, rng, synth), [&](std::vector<double> blk) {
    ASSERT_TRUE(svc.submit(*a, std::move(blk)));
  });
  submit_blocks(packet_wave(0xB0B, rng, synth), [&](std::vector<double> blk) {
    ASSERT_TRUE(svc.submit(*b, std::move(blk)));
  });
  svc.stop();

  std::vector<phy::UlPacket> got_a;
  while (auto pkt = svc.wait_packet(*a)) got_a.push_back(pkt->packet);
  std::vector<phy::UlPacket> got_b;
  while (auto pkt = svc.wait_packet(*b)) got_b.push_back(pkt->packet);
  ASSERT_EQ(got_a.size(), 1u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0].payload, 0xB0A);
  EXPECT_EQ(got_b[0].payload, 0xB0B);

  const auto a_stats = svc.session_stats(*a);
  ASSERT_TRUE(a_stats.has_value());
  EXPECT_EQ(a_stats->blocks_dropped, 0u);
  EXPECT_EQ(a_stats->frames_ok, 1u);
  EXPECT_EQ(svc.stats().blocks_dropped, 0u);
}

TEST(ReaderService, GracefulCloseStillDeliversInFlightPackets) {
  // close_session immediately after submitting: already-accepted blocks
  // keep decoding, the consumer gets every packet, then nullopt once the
  // last in-flight block lands.
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};

  ReaderService::Params params;
  params.workers = 2;
  params.dispatch_capacity = 64;
  ReaderService svc{params};
  svc.start();

  SessionConfig cfg;
  cfg.max_blocks_in_flight = 64;
  const auto id = svc.open_session(cfg);
  ASSERT_TRUE(id.has_value());
  submit_blocks(packet_wave(0xC01, rng, synth), [&](std::vector<double> blk) {
    ASSERT_TRUE(svc.submit(*id, std::move(blk)));
  });
  ASSERT_TRUE(svc.close_session(*id));
  EXPECT_FALSE(svc.submit(*id, std::vector<double>(16, 0.0)));

  std::vector<phy::UlPacket> got;
  while (auto pkt = svc.wait_packet(*id)) got.push_back(pkt->packet);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, 0xC01);
  svc.stop();
}

TEST(ReaderService, ClosedSessionSlotsAreReusedWarm) {
  ReaderService::Params params;
  params.workers = 1;
  ReaderService svc{params};
  svc.start();

  const auto a = svc.open_session(SessionConfig{});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(svc.submit(*a, std::vector<double>(64, 0.0)));
  ASSERT_TRUE(svc.close_session(*a));
  while (svc.wait_packet(*a).has_value()) {
  }  // drain to make the slot reapable

  // The next open reaps and reuses a's slot under a fresh id.
  const auto b = svc.open_session(SessionConfig{});
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b) << "session ids are never recycled";
  EXPECT_EQ(svc.stats().slots_reused, 1u);
  EXPECT_FALSE(svc.session_stats(*a).has_value())
      << "the reaped id no longer resolves";
  // The reused slot starts with clean counters and a working pipeline.
  const auto b_stats = svc.session_stats(*b);
  ASSERT_TRUE(b_stats.has_value());
  EXPECT_EQ(b_stats->blocks_submitted, 0u);
  ASSERT_TRUE(svc.submit(*b, std::vector<double>(64, 0.0)));
  svc.stop();
  EXPECT_EQ(svc.session_stats(*b)->blocks_processed, 1u);
}

TEST(ReaderService, PerSessionInFlightCapDropsExcess) {
  // Without a running dispatcher nothing leaves the queue, so the
  // per-session cap is what bounds submissions.
  ReaderService::Params params;
  params.workers = 1;
  params.dispatch_capacity = 64;
  ReaderService svc{params};

  SessionConfig cfg;
  cfg.max_blocks_in_flight = 2;
  const auto id = svc.open_session(cfg);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(svc.submit(*id, std::vector<double>(16, 0.0)));
  EXPECT_TRUE(svc.submit(*id, std::vector<double>(16, 0.0)));
  EXPECT_FALSE(svc.submit(*id, std::vector<double>(16, 0.0)));
  const auto st = svc.session_stats(*id);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->blocks_submitted, 3u);
  EXPECT_EQ(st->blocks_dropped, 1u);
  svc.start();
  svc.stop();
  EXPECT_EQ(svc.session_stats(*id)->blocks_processed, 2u);
}

TEST(ReaderService, ScopedServicesShareOneRegistryWithoutColliding) {
  // A fleet host runs one ReaderService per reader against a single
  // registry; metrics_scope keeps every instance's rows distinct while an
  // unscoped instance keeps the historical names.
  telemetry::MetricsRegistry registry;
  ReaderService::Params p0;
  p0.workers = 1;
  p0.metrics = &registry;
  p0.metrics_scope = "r0.";
  ReaderService s0{p0};
  ReaderService::Params p1;
  p1.workers = 1;
  p1.metrics = &registry;
  p1.metrics_scope = "r1.";
  ReaderService s1{p1};
  s0.start();
  s1.start();

  const auto id = s0.open_session({});
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(s0.submit(*id, std::vector<double>(16, 0.0)));
  EXPECT_TRUE(s0.submit(*id, std::vector<double>(16, 0.0)));
  s0.stop();
  s1.stop();

  EXPECT_EQ(registry.counter("r0.service.blocks").value(), 2u);
  EXPECT_EQ(registry.counter("r1.service.blocks").value(), 0u);
  EXPECT_EQ(registry.counter("service.blocks").value(), 0u)
      << "scoped instances must not leak into the unscoped name";
}

}  // namespace
