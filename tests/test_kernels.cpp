// Tests for the block DSP kernel layer (dsp/kernels/): phasor-recurrence
// NCO accuracy and renormalization, folded-symmetric FIR kernels and the
// block filter/decimator against the streaming scalar reference, cached
// FFT plans against a naive DFT, and — the load-bearing guarantee — that
// the scalar and block kernel policies produce *identical decoded packets*
// through Ddc, RxChain and the FDMA bank (raw IQ agrees to rounding
// tolerance; packets, bits and timestamps agree exactly).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <numbers>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/fft_plan.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;
using std::complex;
using cplx = std::complex<double>;

constexpr double kPi = std::numbers::pi;

// ------------------------------------------------------------- PhasorNco

TEST(PhasorNco, TracksTrigOverLongRuns) {
  const double phase0 = 0.37;
  const double step = 0.0123456;
  dsp::PhasorNco nco{phase0, step};
  // Irregular chunk sizes straddle the renorm interval in every alignment.
  std::vector<cplx> buf;
  std::size_t i = 0;
  const std::size_t chunks[] = {1, 7, 511, 512, 513, 4096, 100000};
  for (std::size_t c : chunks) {
    buf.resize(c);
    nco.fill(buf.data(), c);
    for (std::size_t k = 0; k < c; ++k, ++i) {
      const double want = phase0 + static_cast<double>(i) * step;
      EXPECT_NEAR(buf[k].real(), std::cos(want), 1e-9) << "sample " << i;
      EXPECT_NEAR(buf[k].imag(), std::sin(want), 1e-9) << "sample " << i;
    }
  }
}

TEST(PhasorNco, AmplitudeStaysUnitForMillionsOfSamples) {
  dsp::PhasorNco nco{0.0, 1.13097335529232556};  // the 90 kHz default step
  std::vector<cplx> buf(4096);
  for (int c = 0; c < 256; ++c) nco.fill(buf.data(), buf.size());  // ~1M
  EXPECT_NEAR(std::abs(nco.phasor()), 1.0, 1e-12);
}

TEST(PhasorNco, MixMatchesPerSampleTrig) {
  sim::Rng rng{11};
  const double step = -0.71;
  std::vector<cplx> in(2000), out(2000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  dsp::PhasorNco nco{0.5, step};
  nco.mix(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ph = 0.5 + static_cast<double>(i) * step;
    const cplx want = in[i] * cplx{std::cos(ph), std::sin(ph)};
    EXPECT_NEAR(out[i].real(), want.real(), 1e-10);
    EXPECT_NEAR(out[i].imag(), want.imag(), 1e-10);
  }
}

TEST(PhasorNco, SetStepRetunesPhaseContinuously) {
  dsp::PhasorNco nco{0.0, 0.2};
  std::vector<cplx> buf(100);
  nco.fill(buf.data(), buf.size());
  const cplx before = nco.phasor();
  nco.set_step(0.05);  // retune mid-stream
  EXPECT_EQ(nco.phasor(), before);
  const cplx next = nco.next();
  EXPECT_EQ(next, before);
}

// ----------------------------------------------------------- FIR kernels

TEST(FirKernels, DetectsSymmetricDesigns) {
  auto h = dsp::design_lowpass(6e3, 500e3, 129);
  EXPECT_TRUE(dsp::is_symmetric(h));
  h[3] += 1e-6;
  EXPECT_FALSE(dsp::is_symmetric(h));
}

TEST(FirKernels, FoldedDotMatchesPlainDot) {
  sim::Rng rng{5};
  for (std::size_t taps : {1u, 2u, 7u, 128u, 129u}) {
    std::vector<double> h(taps);
    for (std::size_t k = 0; k < taps / 2; ++k) {
      h[k] = h[taps - 1 - k] = rng.normal(0.0, 1.0);
    }
    if (taps & 1) h[taps / 2] = rng.normal(0.0, 1.0);
    std::vector<double> xr(taps);
    std::vector<cplx> xc(taps);
    for (std::size_t k = 0; k < taps; ++k) {
      xr[k] = rng.normal(0.0, 1.0);
      xc[k] = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    }
    EXPECT_NEAR(dsp::fir_dot_symmetric(xr.data(), h.data(), taps),
                dsp::fir_dot(xr.data(), h.data(), taps), 1e-12 * taps);
    const cplx a = dsp::fir_dot_symmetric(xc.data(), h.data(), taps);
    const cplx b = dsp::fir_dot(xc.data(), h.data(), taps);
    EXPECT_NEAR(a.real(), b.real(), 1e-12 * taps);
    EXPECT_NEAR(a.imag(), b.imag(), 1e-12 * taps);
  }
}

TEST(FirKernels, BlockFilterMatchesStreamingFilter) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 127);
  dsp::FirFilter<cplx> scalar{coeffs};
  dsp::FirBlockFilter<cplx> block{coeffs};
  sim::Rng rng{6};
  std::vector<cplx> in, want, got;
  // Chunk sizes smaller and larger than the tap count.
  for (std::size_t n : {1u, 3u, 126u, 127u, 128u, 1000u}) {
    in.resize(n);
    want.resize(n);
    got.resize(n);
    for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    for (std::size_t i = 0; i < n; ++i) want[i] = scalar.push(in[i]);
    block.process(in.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i].real(), want[i].real(), 1e-12);
      EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-12);
    }
  }
}

TEST(FirKernels, BlockFilterInPlaceMatchesOutOfPlace) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 63);
  dsp::FirBlockFilter<double> a{coeffs};
  dsp::FirBlockFilter<double> b{coeffs};
  sim::Rng rng{7};
  std::vector<double> x(500), out(500);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  a.process(x.data(), out.data(), x.size());
  b.process(x.data(), x.data(), x.size());  // in-place
  EXPECT_EQ(x, out);
}

TEST(FirKernels, BlockDecimatorMatchesScalarDecimationGrid) {
  const auto coeffs = dsp::design_lowpass(6e3, 500e3, 129);
  const std::size_t decim = 16;
  dsp::FirFilter<double> scalar{coeffs};
  dsp::FirBlockDecimator<double> block{coeffs, decim};
  sim::Rng rng{8};
  std::size_t count = 0;
  std::vector<double> in, out;
  // Chunks smaller than, equal to, and coprime with the decimation.
  for (std::size_t n : {1u, 5u, 15u, 16u, 17u, 777u, 4096u}) {
    in.resize(n);
    out.resize(n / decim + 1);
    for (auto& v : in) v = rng.normal(0.0, 1.0);
    std::vector<double> want;
    for (double s : in) {
      scalar.feed(s);
      if (++count >= decim) {
        count = 0;
        want.push_back(scalar.value());
      }
    }
    const std::size_t got = block.process(in.data(), n, out.data());
    ASSERT_EQ(got, want.size()) << "chunk " << n;
    EXPECT_EQ(block.phase(), count);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_NEAR(out[i], want[i], 1e-12);
    }
  }
}

// -------------------------------------------------------------- FftPlan

std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> spec(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * kPi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    spec[k] = acc;
  }
  return spec;
}

TEST(FftPlan, ForwardMatchesNaiveDft) {
  sim::Rng rng{9};
  std::vector<cplx> x(64);
  for (auto& v : x) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto want = naive_dft(x);
  auto got = x;
  dsp::FftPlan::get(x.size())->forward(got);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-10);
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-10);
  }
}

TEST(FftPlan, ForwardRealMatchesComplexTransform) {
  sim::Rng rng{10};
  // 100 real samples zero-padded to the 128-point plan.
  std::vector<double> x(100);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  std::vector<cplx> full(128, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) full[i] = {x[i], 0.0};
  const auto want = naive_dft(full);
  std::vector<cplx> got;
  dsp::FftPlan::get(128)->forward_real(x.data(), x.size(), got);
  ASSERT_EQ(got.size(), 128u);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-10) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-10) << "bin " << k;
  }
}

TEST(FftPlan, ForwardInverseRoundTrips) {
  sim::Rng rng{12};
  std::vector<cplx> x(256);
  for (auto& v : x) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  auto y = x;
  const auto plan = dsp::FftPlan::get(x.size());
  plan->forward(y);
  plan->inverse(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-12);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-12);
  }
}

TEST(FftPlan, CacheSharesOnePlanPerSize) {
  const auto a = dsp::FftPlan::get(1024);
  const auto b = dsp::FftPlan::get(1024);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), dsp::FftPlan::get(2048).get());
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(dsp::FftPlan{12}, std::invalid_argument);
}

// ------------------------------------------------------------ Ddc parity

dsp::Ddc::Params ddc_params(dsp::KernelPolicy policy) {
  dsp::Ddc::Params p;
  p.kernels = policy;
  return p;
}

TEST(KernelParity, DdcBlockMatchesScalarIq) {
  dsp::Ddc scalar{ddc_params(dsp::KernelPolicy::kScalar)};
  dsp::Ddc block{ddc_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng{13};
  std::vector<double> in;
  std::vector<cplx> iq_s, iq_b;
  // Chunks below, at, and coprime with the decimation of 16.
  for (std::size_t n : {3u, 16u, 17u, 999u, 20000u}) {
    in.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(in.size()) /* arbitrary */;
      in[i] = std::cos(1.13 * static_cast<double>(i) + t) +
              rng.normal(0.0, 0.01);
    }
    iq_s.clear();
    iq_b.clear();
    const std::size_t got_s = scalar.process(std::span<const double>{in}, iq_s);
    const std::size_t got_b = block.process(std::span<const double>{in}, iq_b);
    ASSERT_EQ(got_s, got_b) << "chunk " << n;
    ASSERT_EQ(scalar.decimation_phase(), block.decimation_phase());
    for (std::size_t i = 0; i < got_s; ++i) {
      EXPECT_NEAR(iq_s[i].real(), iq_b[i].real(), 1e-9);
      EXPECT_NEAR(iq_s[i].imag(), iq_b[i].imag(), 1e-9);
    }
  }
}

TEST(KernelParity, DdcPushAndProcessShareState) {
  // push() routes through the same kernels under the block policy, so
  // mixing single-sample and block calls tracks block-only processing to
  // rounding tolerance (the laned NCO rounds differently per block split,
  // so exact bit equality is not guaranteed — ulp-level agreement is).
  dsp::Ddc mixed_calls{ddc_params(dsp::KernelPolicy::kBlock)};
  dsp::Ddc block_only{ddc_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng{14};
  std::vector<double> in(1000);
  for (auto& v : in) v = rng.normal(0.0, 1.0);

  std::vector<cplx> got;
  for (std::size_t i = 0; i < 100; ++i) {
    if (const auto iq = mixed_calls.push(in[i])) got.push_back(*iq);
  }
  mixed_calls.process(std::span<const double>{in}.subspan(100), got);

  std::vector<cplx> want;
  block_only.process(std::span<const double>{in}, want);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), 1e-12) << "iq sample " << i;
    EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-12) << "iq sample " << i;
  }
}

TEST(KernelParity, NegativeCarrierIsConjugateOfPositive) {
  // Regression for the one-sided scalar phase wrap: a negative carrier
  // walks the mixer phase downward, and without the symmetric wrap the
  // phase grows without bound while the positive twin wraps — their
  // outputs drift apart. With the fix the two runs are exact mirrors:
  // same real input, conjugate IQ, bit for bit.
  auto pos = ddc_params(dsp::KernelPolicy::kScalar);
  auto neg = pos;
  neg.carrier_hz = -pos.carrier_hz;
  dsp::Ddc ddc_pos{pos};
  dsp::Ddc ddc_neg{neg};
  sim::Rng rng{15};
  std::vector<double> in(100000);
  const double w = 2.0 * kPi * pos.carrier_hz / pos.sample_rate_hz;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::cos(w * static_cast<double>(i)) + rng.normal(0.0, 0.01);
  }
  const auto iq_pos = ddc_pos.process(in);
  const auto iq_neg = ddc_neg.process(in);
  ASSERT_EQ(iq_pos.size(), iq_neg.size());
  ASSERT_GT(iq_pos.size(), 6000u);
  for (std::size_t i = 0; i < iq_pos.size(); ++i) {
    EXPECT_NEAR(iq_neg[i].real(), iq_pos[i].real(), 1e-14) << "iq " << i;
    EXPECT_NEAR(iq_neg[i].imag(), -iq_pos[i].imag(), 1e-14) << "iq " << i;
  }
}

TEST(KernelParity, DerotateBlockMatchesScalar) {
  sim::Rng rng{16};
  std::vector<cplx> iq(5000);
  for (auto& v : iq) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto a = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kScalar);
  const auto b = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kBlock);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-9);
  }
}

// ---------------------------------------------------------- Synth parity

acoustic::UplinkWaveformSynth::Params synth_params(dsp::KernelPolicy policy) {
  acoustic::UplinkWaveformSynth::Params p;
  p.ambient_amplitude = 0.02;
  p.kernels = policy;
  return p;
}

std::vector<acoustic::BackscatterSource> parity_sources() {
  std::vector<acoustic::BackscatterSource> srcs;
  // A chip-stream source at a rate that does not divide the sample rate,
  // starting off the sample grid.
  acoustic::BackscatterSource a;
  a.chips = phy::Fm0Encoder::encode_frame(
      phy::UlPacket{.tid = 3, .payload = 0x2A5}.serialize());
  a.chip_rate = 374.6;
  a.start_s = 0.0301237;
  a.amplitude = 0.2;
  a.phase_rad = 1.2;
  srcs.push_back(a);
  // A multi-level source with a different start and phase.
  acoustic::BackscatterSource b;
  b.levels = {0.4, 0.9, 0.35, 0.7, 0.5, 0.92, 0.38, 0.8};
  b.chip_rate = 1500.0;
  b.start_s = 0.011;
  b.amplitude = 0.15;
  b.phase_rad = -0.7;
  srcs.push_back(b);
  return srcs;
}

TEST(KernelParity, SynthesizerBlockMatchesScalar) {
  acoustic::UplinkWaveformSynth scalar{
      synth_params(dsp::KernelPolicy::kScalar)};
  acoustic::UplinkWaveformSynth block{synth_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng_s{42}, rng_b{42};
  const auto srcs = parity_sources();
  for (int round = 0; round < 3; ++round) {
    const auto w_s = scalar.synthesize(srcs, 0.08, rng_s);
    const auto w_b = block.synthesize(srcs, 0.08, rng_b);
    ASSERT_EQ(w_s.size(), w_b.size());
    for (std::size_t i = 0; i < w_s.size(); ++i) {
      ASSERT_NEAR(w_s[i], w_b[i], 1e-9) << "round " << round << " i " << i;
    }
  }
  EXPECT_DOUBLE_EQ(scalar.now(), block.now());
  // Both paths must consume the RNG stream identically (one normal draw
  // per sample, in sample order) — the next draw from each twin agrees.
  EXPECT_DOUBLE_EQ(rng_s.normal(0.0, 1.0), rng_b.normal(0.0, 1.0));
}

// ------------------------------------------------- Packet-level parity

reader::RxChain::Params rx_params(dsp::KernelPolicy policy) {
  reader::RxChain::Params p;
  p.ddc.kernels = policy;
  return p;
}

TEST(KernelParity, RxChainDecodesIdenticalPacketsAcrossPolicies) {
  // The hard guarantee behind the policy switch: not "similar" decodes but
  // the same packets, same bit counts, same raw-sample timestamps.
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{77};
  reader::RxChain scalar{rx_params(dsp::KernelPolicy::kScalar)};
  reader::RxChain block{rx_params(dsp::KernelPolicy::kBlock)};
  for (int i = 0; i < 4; ++i) {
    acoustic::BackscatterSource src;
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(i + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x300 + i)};
    src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    src.chip_rate = 375.0;
    src.start_s = 0.03;
    src.amplitude = 0.2;
    src.phase_rad = 1.2;
    const auto wave = synth.synthesize({src}, 0.32, rng);
    // Feed both chains in awkward chunk sizes (coprime with the
    // decimation) so the block path crosses many phase alignments.
    constexpr std::size_t kChunk = 7777;
    for (std::size_t off = 0; off < wave.size(); off += kChunk) {
      const std::size_t len = std::min(kChunk, wave.size() - off);
      const std::vector<double> piece(wave.begin() + off,
                                      wave.begin() + off + len);
      scalar.process(piece);
      block.process(piece);
    }
  }
  EXPECT_EQ(scalar.samples_consumed(), block.samples_consumed());
  EXPECT_EQ(scalar.bits_decoded(), block.bits_decoded());
  ASSERT_GE(scalar.packets().size(), 3u);
  ASSERT_EQ(scalar.packets().size(), block.packets().size());
  for (std::size_t i = 0; i < scalar.packets().size(); ++i) {
    EXPECT_EQ(scalar.packets()[i].packet, block.packets()[i].packet);
    EXPECT_DOUBLE_EQ(scalar.packets()[i].time_s, block.packets()[i].time_s);
  }
}

reader::FdmaRxChain::Params fdma_params(dsp::KernelPolicy policy,
                                        std::size_t workers) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = workers;
  fp.kernels = policy;
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  return fp;
}

TEST(KernelParity, FdmaBankDecodesIdenticalPacketsAcrossPolicies) {
  // Scalar sequential bank vs block parallel bank: policies and threading
  // composed, still the same packets in the same deterministic order.
  reader::FdmaRxChain scalar{fdma_params(dsp::KernelPolicy::kScalar, 1)};
  reader::FdmaRxChain block{fdma_params(dsp::KernelPolicy::kBlock, 4)};
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 4; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * k;
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  const auto wave = synth.synthesize(srcs, 0.3, rng);
  constexpr std::size_t kChunk = 20000;
  for (std::size_t off = 0; off < wave.size(); off += kChunk) {
    const std::size_t len = std::min(kChunk, wave.size() - off);
    const std::vector<double> piece(wave.begin() + off,
                                    wave.begin() + off + len);
    scalar.process(piece);
    block.process(piece);
  }
  std::size_t total = 0;
  for (std::size_t c = 0; c < scalar.channel_count(); ++c) {
    ASSERT_EQ(scalar.packets(c), block.packets(c)) << "channel " << c;
    total += scalar.packets(c).size();
    const auto ss = scalar.channel_stats(c);
    const auto bs = block.channel_stats(c);
    EXPECT_EQ(ss.iq_samples, bs.iq_samples);
    EXPECT_EQ(ss.bits, bs.bits);
    EXPECT_EQ(ss.frames_ok, bs.frames_ok);
    EXPECT_EQ(ss.crc_failures, bs.crc_failures);
  }
  EXPECT_GE(total, 3u);
  const auto merged_s = scalar.drain_packets();
  const auto merged_b = block.drain_packets();
  ASSERT_EQ(merged_s.size(), merged_b.size());
  for (std::size_t i = 0; i < merged_s.size(); ++i) {
    EXPECT_EQ(merged_s[i].packet, merged_b[i].packet);
    EXPECT_EQ(merged_s[i].channel, merged_b[i].channel);
    EXPECT_DOUBLE_EQ(merged_s[i].time_s, merged_b[i].time_s);
  }
}

}  // namespace
