// Tests for the block DSP kernel layer (dsp/kernels/): phasor-recurrence
// NCO accuracy and renormalization, folded-symmetric FIR kernels and the
// block filter/decimator against the streaming scalar reference, cached
// FFT plans against a naive DFT, and — the load-bearing guarantee — that
// the scalar and block kernel policies produce *identical decoded packets*
// through Ddc, RxChain and the FDMA bank (raw IQ agrees to rounding
// tolerance; packets, bits and timestamps agree exactly).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <iterator>
#include <numbers>
#include <vector>

#include "arachnet/dsp/kernels/channelizer.hpp"

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/fft_plan.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/nco.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;
using std::complex;
using cplx = std::complex<double>;

constexpr double kPi = std::numbers::pi;

// ------------------------------------------------------------- PhasorNco

TEST(PhasorNco, TracksTrigOverLongRuns) {
  const double phase0 = 0.37;
  const double step = 0.0123456;
  dsp::PhasorNco nco{phase0, step};
  // Irregular chunk sizes straddle the renorm interval in every alignment.
  std::vector<cplx> buf;
  std::size_t i = 0;
  const std::size_t chunks[] = {1, 7, 511, 512, 513, 4096, 100000};
  for (std::size_t c : chunks) {
    buf.resize(c);
    nco.fill(buf.data(), c);
    for (std::size_t k = 0; k < c; ++k, ++i) {
      const double want = phase0 + static_cast<double>(i) * step;
      EXPECT_NEAR(buf[k].real(), std::cos(want), 1e-9) << "sample " << i;
      EXPECT_NEAR(buf[k].imag(), std::sin(want), 1e-9) << "sample " << i;
    }
  }
}

TEST(PhasorNco, AmplitudeStaysUnitForMillionsOfSamples) {
  dsp::PhasorNco nco{0.0, 1.13097335529232556};  // the 90 kHz default step
  std::vector<cplx> buf(4096);
  for (int c = 0; c < 256; ++c) nco.fill(buf.data(), buf.size());  // ~1M
  EXPECT_NEAR(std::abs(nco.phasor()), 1.0, 1e-12);
}

TEST(PhasorNco, MixMatchesPerSampleTrig) {
  sim::Rng rng{11};
  const double step = -0.71;
  std::vector<cplx> in(2000), out(2000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  dsp::PhasorNco nco{0.5, step};
  nco.mix(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ph = 0.5 + static_cast<double>(i) * step;
    const cplx want = in[i] * cplx{std::cos(ph), std::sin(ph)};
    EXPECT_NEAR(out[i].real(), want.real(), 1e-10);
    EXPECT_NEAR(out[i].imag(), want.imag(), 1e-10);
  }
}

TEST(PhasorNco, SetStepRetunesPhaseContinuously) {
  dsp::PhasorNco nco{0.0, 0.2};
  std::vector<cplx> buf(100);
  nco.fill(buf.data(), buf.size());
  const cplx before = nco.phasor();
  nco.set_step(0.05);  // retune mid-stream
  EXPECT_EQ(nco.phasor(), before);
  const cplx next = nco.next();
  EXPECT_EQ(next, before);
}

// ----------------------------------------------------------- FIR kernels

TEST(FirKernels, DetectsSymmetricDesigns) {
  auto h = dsp::design_lowpass(6e3, 500e3, 129);
  EXPECT_TRUE(dsp::is_symmetric(h));
  h[3] += 1e-6;
  EXPECT_FALSE(dsp::is_symmetric(h));
}

TEST(FirKernels, FoldedDotMatchesPlainDot) {
  sim::Rng rng{5};
  for (std::size_t taps : {1u, 2u, 7u, 128u, 129u}) {
    std::vector<double> h(taps);
    for (std::size_t k = 0; k < taps / 2; ++k) {
      h[k] = h[taps - 1 - k] = rng.normal(0.0, 1.0);
    }
    if (taps & 1) h[taps / 2] = rng.normal(0.0, 1.0);
    std::vector<double> xr(taps);
    std::vector<cplx> xc(taps);
    for (std::size_t k = 0; k < taps; ++k) {
      xr[k] = rng.normal(0.0, 1.0);
      xc[k] = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    }
    EXPECT_NEAR(dsp::fir_dot_symmetric(xr.data(), h.data(), taps),
                dsp::fir_dot(xr.data(), h.data(), taps), 1e-12 * taps);
    const cplx a = dsp::fir_dot_symmetric(xc.data(), h.data(), taps);
    const cplx b = dsp::fir_dot(xc.data(), h.data(), taps);
    EXPECT_NEAR(a.real(), b.real(), 1e-12 * taps);
    EXPECT_NEAR(a.imag(), b.imag(), 1e-12 * taps);
  }
}

TEST(FirKernels, BlockFilterMatchesStreamingFilter) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 127);
  dsp::FirFilter<cplx> scalar{coeffs};
  dsp::FirBlockFilter<cplx> block{coeffs};
  sim::Rng rng{6};
  std::vector<cplx> in, want, got;
  // Chunk sizes smaller and larger than the tap count.
  for (std::size_t n : {1u, 3u, 126u, 127u, 128u, 1000u}) {
    in.resize(n);
    want.resize(n);
    got.resize(n);
    for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    for (std::size_t i = 0; i < n; ++i) want[i] = scalar.push(in[i]);
    block.process(in.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i].real(), want[i].real(), 1e-12);
      EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-12);
    }
  }
}

TEST(FirKernels, BlockFilterInPlaceMatchesOutOfPlace) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 63);
  dsp::FirBlockFilter<double> a{coeffs};
  dsp::FirBlockFilter<double> b{coeffs};
  sim::Rng rng{7};
  std::vector<double> x(500), out(500);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  a.process(x.data(), out.data(), x.size());
  b.process(x.data(), x.data(), x.size());  // in-place
  EXPECT_EQ(x, out);
}

TEST(FirKernels, BlockDecimatorMatchesScalarDecimationGrid) {
  const auto coeffs = dsp::design_lowpass(6e3, 500e3, 129);
  const std::size_t decim = 16;
  dsp::FirFilter<double> scalar{coeffs};
  dsp::FirBlockDecimator<double> block{coeffs, decim};
  sim::Rng rng{8};
  std::size_t count = 0;
  std::vector<double> in, out;
  // Chunks smaller than, equal to, and coprime with the decimation.
  for (std::size_t n : {1u, 5u, 15u, 16u, 17u, 777u, 4096u}) {
    in.resize(n);
    out.resize(n / decim + 1);
    for (auto& v : in) v = rng.normal(0.0, 1.0);
    std::vector<double> want;
    for (double s : in) {
      scalar.feed(s);
      if (++count >= decim) {
        count = 0;
        want.push_back(scalar.value());
      }
    }
    const std::size_t got = block.process(in.data(), n, out.data());
    ASSERT_EQ(got, want.size()) << "chunk " << n;
    EXPECT_EQ(block.phase(), count);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_NEAR(out[i], want[i], 1e-12);
    }
  }
}

// -------------------------------------------------------------- FftPlan

std::vector<cplx> naive_dft(const std::vector<cplx>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> spec(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * kPi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * cplx{std::cos(ang), std::sin(ang)};
    }
    spec[k] = acc;
  }
  return spec;
}

TEST(FftPlan, ForwardMatchesNaiveDft) {
  sim::Rng rng{9};
  std::vector<cplx> x(64);
  for (auto& v : x) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto want = naive_dft(x);
  auto got = x;
  dsp::FftPlan::get(x.size())->forward(got);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-10);
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-10);
  }
}

TEST(FftPlan, ForwardRealMatchesComplexTransform) {
  sim::Rng rng{10};
  // 100 real samples zero-padded to the 128-point plan.
  std::vector<double> x(100);
  for (auto& v : x) v = rng.normal(0.0, 1.0);
  std::vector<cplx> full(128, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) full[i] = {x[i], 0.0};
  const auto want = naive_dft(full);
  std::vector<cplx> got;
  dsp::FftPlan::get(128)->forward_real(x.data(), x.size(), got);
  ASSERT_EQ(got.size(), 128u);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].real(), want[k].real(), 1e-10) << "bin " << k;
    EXPECT_NEAR(got[k].imag(), want[k].imag(), 1e-10) << "bin " << k;
  }
}

TEST(FftPlan, ForwardInverseRoundTrips) {
  sim::Rng rng{12};
  std::vector<cplx> x(256);
  for (auto& v : x) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  auto y = x;
  const auto plan = dsp::FftPlan::get(x.size());
  plan->forward(y);
  plan->inverse(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-12);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-12);
  }
}

TEST(FftPlan, CacheSharesOnePlanPerSize) {
  const auto a = dsp::FftPlan::get(1024);
  const auto b = dsp::FftPlan::get(1024);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), dsp::FftPlan::get(2048).get());
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(dsp::FftPlan{12}, std::invalid_argument);
}

// ------------------------------------------------------------ Ddc parity

dsp::Ddc::Params ddc_params(dsp::KernelPolicy policy) {
  dsp::Ddc::Params p;
  p.kernels = policy;
  return p;
}

TEST(KernelParity, DdcBlockMatchesScalarIq) {
  dsp::Ddc scalar{ddc_params(dsp::KernelPolicy::kScalar)};
  dsp::Ddc block{ddc_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng{13};
  std::vector<double> in;
  std::vector<cplx> iq_s, iq_b;
  // Chunks below, at, and coprime with the decimation of 16.
  for (std::size_t n : {3u, 16u, 17u, 999u, 20000u}) {
    in.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(in.size()) /* arbitrary */;
      in[i] = std::cos(1.13 * static_cast<double>(i) + t) +
              rng.normal(0.0, 0.01);
    }
    iq_s.clear();
    iq_b.clear();
    const std::size_t got_s = scalar.process(std::span<const double>{in}, iq_s);
    const std::size_t got_b = block.process(std::span<const double>{in}, iq_b);
    ASSERT_EQ(got_s, got_b) << "chunk " << n;
    ASSERT_EQ(scalar.decimation_phase(), block.decimation_phase());
    for (std::size_t i = 0; i < got_s; ++i) {
      EXPECT_NEAR(iq_s[i].real(), iq_b[i].real(), 1e-9);
      EXPECT_NEAR(iq_s[i].imag(), iq_b[i].imag(), 1e-9);
    }
  }
}

TEST(KernelParity, DdcPushAndProcessShareState) {
  // push() routes through the same kernels under the block policy, so
  // mixing single-sample and block calls tracks block-only processing to
  // rounding tolerance (the laned NCO rounds differently per block split,
  // so exact bit equality is not guaranteed — ulp-level agreement is).
  dsp::Ddc mixed_calls{ddc_params(dsp::KernelPolicy::kBlock)};
  dsp::Ddc block_only{ddc_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng{14};
  std::vector<double> in(1000);
  for (auto& v : in) v = rng.normal(0.0, 1.0);

  std::vector<cplx> got;
  for (std::size_t i = 0; i < 100; ++i) {
    if (const auto iq = mixed_calls.push(in[i])) got.push_back(*iq);
  }
  mixed_calls.process(std::span<const double>{in}.subspan(100), got);

  std::vector<cplx> want;
  block_only.process(std::span<const double>{in}, want);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), 1e-12) << "iq sample " << i;
    EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-12) << "iq sample " << i;
  }
}

TEST(KernelParity, NegativeCarrierIsConjugateOfPositive) {
  // Regression for the one-sided scalar phase wrap: a negative carrier
  // walks the mixer phase downward, and without the symmetric wrap the
  // phase grows without bound while the positive twin wraps — their
  // outputs drift apart. With the fix the two runs are exact mirrors:
  // same real input, conjugate IQ, bit for bit.
  auto pos = ddc_params(dsp::KernelPolicy::kScalar);
  auto neg = pos;
  neg.carrier_hz = -pos.carrier_hz;
  dsp::Ddc ddc_pos{pos};
  dsp::Ddc ddc_neg{neg};
  sim::Rng rng{15};
  std::vector<double> in(100000);
  const double w = 2.0 * kPi * pos.carrier_hz / pos.sample_rate_hz;
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = std::cos(w * static_cast<double>(i)) + rng.normal(0.0, 0.01);
  }
  const auto iq_pos = ddc_pos.process(in);
  const auto iq_neg = ddc_neg.process(in);
  ASSERT_EQ(iq_pos.size(), iq_neg.size());
  ASSERT_GT(iq_pos.size(), 6000u);
  for (std::size_t i = 0; i < iq_pos.size(); ++i) {
    EXPECT_NEAR(iq_neg[i].real(), iq_pos[i].real(), 1e-14) << "iq " << i;
    EXPECT_NEAR(iq_neg[i].imag(), -iq_pos[i].imag(), 1e-14) << "iq " << i;
  }
}

TEST(KernelParity, DerotateBlockMatchesScalar) {
  sim::Rng rng{16};
  std::vector<cplx> iq(5000);
  for (auto& v : iq) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto a = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kScalar);
  const auto b = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kBlock);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-9);
  }
}

// ---------------------------------------------------------- Synth parity

acoustic::UplinkWaveformSynth::Params synth_params(dsp::KernelPolicy policy) {
  acoustic::UplinkWaveformSynth::Params p;
  p.ambient_amplitude = 0.02;
  p.kernels = policy;
  return p;
}

std::vector<acoustic::BackscatterSource> parity_sources() {
  std::vector<acoustic::BackscatterSource> srcs;
  // A chip-stream source at a rate that does not divide the sample rate,
  // starting off the sample grid.
  acoustic::BackscatterSource a;
  a.chips = phy::Fm0Encoder::encode_frame(
      phy::UlPacket{.tid = 3, .payload = 0x2A5}.serialize());
  a.chip_rate = 374.6;
  a.start_s = 0.0301237;
  a.amplitude = 0.2;
  a.phase_rad = 1.2;
  srcs.push_back(a);
  // A multi-level source with a different start and phase.
  acoustic::BackscatterSource b;
  b.levels = {0.4, 0.9, 0.35, 0.7, 0.5, 0.92, 0.38, 0.8};
  b.chip_rate = 1500.0;
  b.start_s = 0.011;
  b.amplitude = 0.15;
  b.phase_rad = -0.7;
  srcs.push_back(b);
  return srcs;
}

TEST(KernelParity, SynthesizerBlockMatchesScalar) {
  acoustic::UplinkWaveformSynth scalar{
      synth_params(dsp::KernelPolicy::kScalar)};
  acoustic::UplinkWaveformSynth block{synth_params(dsp::KernelPolicy::kBlock)};
  sim::Rng rng_s{42}, rng_b{42};
  const auto srcs = parity_sources();
  for (int round = 0; round < 3; ++round) {
    const auto w_s = scalar.synthesize(srcs, 0.08, rng_s);
    const auto w_b = block.synthesize(srcs, 0.08, rng_b);
    ASSERT_EQ(w_s.size(), w_b.size());
    for (std::size_t i = 0; i < w_s.size(); ++i) {
      ASSERT_NEAR(w_s[i], w_b[i], 1e-9) << "round " << round << " i " << i;
    }
  }
  EXPECT_DOUBLE_EQ(scalar.now(), block.now());
  // Both paths must consume the RNG stream identically (one normal draw
  // per sample, in sample order) — the next draw from each twin agrees.
  EXPECT_DOUBLE_EQ(rng_s.normal(0.0, 1.0), rng_b.normal(0.0, 1.0));
}

// ------------------------------------------------- Packet-level parity

reader::RxChain::Params rx_params(dsp::KernelPolicy policy) {
  reader::RxChain::Params p;
  p.ddc.kernels = policy;
  return p;
}

TEST(KernelParity, RxChainDecodesIdenticalPacketsAcrossPolicies) {
  // The hard guarantee behind the policy switch: not "similar" decodes but
  // the same packets, same bit counts, same raw-sample timestamps.
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{77};
  reader::RxChain scalar{rx_params(dsp::KernelPolicy::kScalar)};
  reader::RxChain block{rx_params(dsp::KernelPolicy::kBlock)};
  for (int i = 0; i < 4; ++i) {
    acoustic::BackscatterSource src;
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(i + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x300 + i)};
    src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    src.chip_rate = 375.0;
    src.start_s = 0.03;
    src.amplitude = 0.2;
    src.phase_rad = 1.2;
    const auto wave = synth.synthesize({src}, 0.32, rng);
    // Feed both chains in awkward chunk sizes (coprime with the
    // decimation) so the block path crosses many phase alignments.
    constexpr std::size_t kChunk = 7777;
    for (std::size_t off = 0; off < wave.size(); off += kChunk) {
      const std::size_t len = std::min(kChunk, wave.size() - off);
      const std::vector<double> piece(wave.begin() + off,
                                      wave.begin() + off + len);
      scalar.process(piece);
      block.process(piece);
    }
  }
  EXPECT_EQ(scalar.samples_consumed(), block.samples_consumed());
  EXPECT_EQ(scalar.bits_decoded(), block.bits_decoded());
  ASSERT_GE(scalar.packets().size(), 3u);
  ASSERT_EQ(scalar.packets().size(), block.packets().size());
  for (std::size_t i = 0; i < scalar.packets().size(); ++i) {
    EXPECT_EQ(scalar.packets()[i].packet, block.packets()[i].packet);
    EXPECT_DOUBLE_EQ(scalar.packets()[i].time_s, block.packets()[i].time_s);
  }
}

reader::FdmaRxChain::Params fdma_params(
    dsp::KernelPolicy policy, std::size_t workers,
    reader::FdmaRxChain::BankPolicy bank =
        reader::FdmaRxChain::BankPolicy::kPerChannel) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = workers;
  fp.kernels = policy;
  fp.bank = bank;  // pinned so each test exercises the bank it names
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  return fp;
}

TEST(KernelParity, FdmaBankDecodesIdenticalPacketsAcrossPolicies) {
  // Scalar sequential bank vs block parallel bank: policies and threading
  // composed, still the same packets in the same deterministic order.
  reader::FdmaRxChain scalar{fdma_params(dsp::KernelPolicy::kScalar, 1)};
  reader::FdmaRxChain block{fdma_params(dsp::KernelPolicy::kBlock, 4)};
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 4; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * k;
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  const auto wave = synth.synthesize(srcs, 0.3, rng);
  constexpr std::size_t kChunk = 20000;
  for (std::size_t off = 0; off < wave.size(); off += kChunk) {
    const std::size_t len = std::min(kChunk, wave.size() - off);
    const std::vector<double> piece(wave.begin() + off,
                                    wave.begin() + off + len);
    scalar.process(piece);
    block.process(piece);
  }
  std::size_t total = 0;
  for (std::size_t c = 0; c < scalar.channel_count(); ++c) {
    ASSERT_EQ(scalar.packets(c), block.packets(c)) << "channel " << c;
    total += scalar.packets(c).size();
    const auto ss = scalar.channel_stats(c);
    const auto bs = block.channel_stats(c);
    EXPECT_EQ(ss.iq_samples, bs.iq_samples);
    EXPECT_EQ(ss.bits, bs.bits);
    EXPECT_EQ(ss.frames_ok, bs.frames_ok);
    EXPECT_EQ(ss.crc_failures, bs.crc_failures);
  }
  EXPECT_GE(total, 3u);
  const auto merged_s = scalar.drain_packets();
  const auto merged_b = block.drain_packets();
  ASSERT_EQ(merged_s.size(), merged_b.size());
  for (std::size_t i = 0; i < merged_s.size(); ++i) {
    EXPECT_EQ(merged_s[i].packet, merged_b[i].packet);
    EXPECT_EQ(merged_s[i].channel, merged_b[i].channel);
    EXPECT_DOUBLE_EQ(merged_s[i].time_s, merged_b[i].time_s);
  }
}

// ----------------------------------------------------------- Channelizer

// A channelizer sized like the FDMA bank sizes one: 62.5 kS/s IQ (the
// decimation-8 bank), 375 chip/s, four subcarriers one 1.5 kHz grid step
// apart.
constexpr double kChzrFs = 62500.0;
constexpr double kChzrChip = 375.0;

std::vector<double> chzr_centers() { return {3000.0, 4500.0, 6000.0, 7500.0}; }

dsp::PolyphaseChannelizer make_channelizer() {
  const auto centers = chzr_centers();
  const auto plan =
      dsp::PolyphaseChannelizer::plan(kChzrFs, kChzrChip, centers);
  EXPECT_TRUE(plan.viable) << plan.reason;
  return dsp::PolyphaseChannelizer{{
      .sample_rate_hz = kChzrFs,
      .fft_size = plan.fft_size,
      .decimation = plan.decimation,
      .prototype = dsp::design_lowpass(plan.cutoff_hz, kChzrFs, plan.taps),
      .center_hz = centers,
  }};
}

TEST(Channelizer, PlannerSizesTheBank) {
  const auto plan = dsp::PolyphaseChannelizer::plan(kChzrFs, kChzrChip,
                                                    chzr_centers());
  ASSERT_TRUE(plan.viable) << plan.reason;
  // C = next power of two >= fs/chip (166.7), D keeps >= 16 samples/chip.
  EXPECT_EQ(plan.fft_size, 256u);
  EXPECT_EQ(plan.decimation, 8u);
  EXPECT_GE(kChzrFs / static_cast<double>(plan.decimation),
            16.0 * kChzrChip);
  EXPECT_DOUBLE_EQ(plan.grid_origin_hz, 3000.0);
  EXPECT_DOUBLE_EQ(plan.grid_spacing_hz, 1500.0);
  // Off-grid and degenerate configurations are refused with a reason.
  EXPECT_FALSE(dsp::PolyphaseChannelizer::plan(kChzrFs, kChzrChip,
                                               {3000.0, 4500.0, 6100.0})
                   .viable);
  EXPECT_FALSE(
      dsp::PolyphaseChannelizer::plan(8.0 * kChzrChip, kChzrChip, {3000.0})
          .viable);
  EXPECT_FALSE(dsp::PolyphaseChannelizer::plan(kChzrFs, kChzrChip, {}).viable);
}

TEST(Channelizer, ToneLandsOnlyInItsLane) {
  // Known-answer test: a pure complex tone at one lane's center must come
  // out of that lane at (nearly) full amplitude rotated to DC, and leak
  // into the adjacent lanes by no more than the prototype's stopband
  // (Hamming windowed-sinc: < -50 dB; assert -40 dB for margin).
  const auto centers = chzr_centers();
  for (std::size_t tone = 0; tone < centers.size(); ++tone) {
    auto chzr = make_channelizer();
    const double w = 2.0 * kPi * centers[tone] / kChzrFs;
    const double amp = 0.7;
    std::vector<cplx> in(16384);
    for (std::size_t t = 0; t < in.size(); ++t) {
      const double ph = w * static_cast<double>(t);
      in[t] = amp * cplx{std::cos(ph), std::sin(ph)};
    }
    const std::size_t frames = chzr.process(in.data(), in.size());
    ASSERT_EQ(frames, in.size() / chzr.decimation());
    // Skip the prototype warmup (taps/decimation frames).
    const std::size_t warm = chzr.taps() / chzr.decimation() + 4;
    ASSERT_GT(frames, warm + 100);
    for (std::size_t k = 0; k < centers.size(); ++k) {
      double peak = 0.0;
      for (std::size_t f = warm; f < frames; ++f) {
        peak = std::max(peak, std::abs(chzr.lane(k)[f]));
      }
      if (k == tone) {
        EXPECT_NEAR(peak, amp, 0.05 * amp) << "lane " << k;
        // The residual-shift correction must park the tone at exact DC:
        // successive lane samples agree in phase.
        for (std::size_t f = warm; f + 1 < frames; ++f) {
          const cplx ratio = chzr.lane(k)[f + 1] / chzr.lane(k)[f];
          ASSERT_NEAR(std::arg(ratio), 0.0, 1e-6) << "frame " << f;
        }
      } else {
        EXPECT_LT(peak, amp * 0.01)
            << "tone " << tone << " leaked into lane " << k;
      }
    }
  }
}

TEST(Channelizer, CommutatorCarriesAcrossSplitCalls) {
  // One big process() call vs the same stream in awkward little pieces:
  // history and frame phase carry across calls, so the lanes are
  // bit-identical (same windows, same arithmetic, same frame grid).
  auto whole = make_channelizer();
  auto split = make_channelizer();
  sim::Rng rng{23};
  std::vector<cplx> in(12000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const std::size_t total = whole.process(in.data(), in.size());

  std::vector<std::vector<cplx>> lanes(split.lane_count());
  const std::size_t chunks[] = {1, 3, 7, 8, 64, 129, 1000, 2048};
  std::size_t off = 0, ci = 0;
  while (off < in.size()) {
    const std::size_t n =
        std::min(chunks[ci++ % std::size(chunks)], in.size() - off);
    const std::size_t got = split.process(in.data() + off, n);
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      lanes[k].insert(lanes[k].end(), split.lane(k),
                      split.lane(k) + got);
    }
    off += n;
  }
  ASSERT_EQ(whole.phase(), split.phase());
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    ASSERT_EQ(lanes[k].size(), total);
    for (std::size_t f = 0; f < total; ++f) {
      ASSERT_EQ(lanes[k][f], whole.lane(k)[f])
          << "lane " << k << " frame " << f;
    }
  }
}

// FDMA capture shared by the bank-policy tests: one tag per subcarrier.
std::vector<double> fdma_capture(const std::vector<double>& subcarriers,
                                 double seconds = 0.3) {
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  for (std::size_t k = 0; k < subcarriers.size(); ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, subcarriers[k]}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * static_cast<double>(k);
    s.phase_rad = 0.5 + 0.4 * static_cast<double>(k);
    srcs.push_back(s);
  }
  return synth.synthesize(srcs, seconds, rng);
}

TEST(Channelizer, FdmaBankPacketsIdenticalAcrossSplitCalls) {
  // Packet-level commutator continuity: the channelizer bank fed one big
  // block decodes the same packets at the same instants as the same bank
  // fed many small blocks.
  auto params = fdma_params(dsp::KernelPolicy::kBlock, 1,
                            reader::FdmaRxChain::BankPolicy::kChannelizer);
  reader::FdmaRxChain whole{params};
  reader::FdmaRxChain split{params};
  ASSERT_EQ(whole.active_bank(),
            reader::FdmaRxChain::BankPolicy::kChannelizer);
  const auto wave = fdma_capture(chzr_centers());
  whole.process(wave.data(), wave.size());
  const std::size_t chunks[] = {501, 3, 12800, 7, 999, 20000};
  std::size_t off = 0, ci = 0;
  while (off < wave.size()) {
    const std::size_t n =
        std::min(chunks[ci++ % std::size(chunks)], wave.size() - off);
    split.process(wave.data() + off, n);
    off += n;
  }
  const auto a = whole.drain_packets();
  const auto b = split.drain_packets();
  ASSERT_GE(a.size(), 3u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].packet, b[i].packet);
    EXPECT_EQ(a[i].channel, b[i].channel);
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
  }
}

TEST(KernelParity, BankPolicyMatrixDecodesIdenticalPacketStreams) {
  // The full matrix the parity contract covers: {scalar, block, simd}
  // kernels x {per-channel, channelizer} banks (threading varied for good
  // measure). Payloads, channels and CRC verdicts must agree exactly
  // across all six; timestamps within one channelizer lane sample — that
  // bounds both the banks' differing prototype filters and the simd
  // tier's float32 slicer jitter (a crossing can move ±1 decimated
  // sample, an order of magnitude under the lane sample).
  using Bank = reader::FdmaRxChain::BankPolicy;
  struct Cell {
    dsp::KernelPolicy kernels;
    std::size_t workers;
    Bank bank;
  };
  const Cell cells[] = {
      {dsp::KernelPolicy::kScalar, 1, Bank::kPerChannel},
      {dsp::KernelPolicy::kBlock, 4, Bank::kPerChannel},
      {dsp::KernelPolicy::kSimd, 1, Bank::kPerChannel},
      {dsp::KernelPolicy::kScalar, 1, Bank::kChannelizer},
      {dsp::KernelPolicy::kBlock, 4, Bank::kChannelizer},
      {dsp::KernelPolicy::kSimd, 4, Bank::kChannelizer},
  };
  const auto wave = fdma_capture(chzr_centers());
  std::vector<std::vector<reader::RxPacket>> decoded;
  double lane_dt = 0.0;
  for (const auto& cell : cells) {
    reader::FdmaRxChain bank{
        fdma_params(cell.kernels, cell.workers, cell.bank)};
    ASSERT_EQ(bank.active_bank(), cell.bank);
    constexpr std::size_t kChunk = 20000;
    for (std::size_t off = 0; off < wave.size(); off += kChunk) {
      bank.process(wave.data(), 0);  // empty call: must be a no-op
      bank.process(wave.data() + off,
                   std::min(kChunk, wave.size() - off));
    }
    decoded.push_back(bank.drain_packets());
    if (cell.bank == Bank::kChannelizer) {
      // One lane sample in seconds, from the engaged channelizer's plan.
      const auto plan = dsp::PolyphaseChannelizer::plan(
          kChzrFs, kChzrChip, chzr_centers());
      lane_dt = static_cast<double>(plan.decimation) / kChzrFs;
    }
  }
  // Compare per-channel packet streams: a timestamp shift inside the
  // tolerance can legally reorder the cross-channel merge, so the merged
  // order is not part of the parity contract — the per-channel sequences
  // and their instants are.
  const auto by_channel = [](const std::vector<reader::RxPacket>& merged) {
    std::vector<std::vector<reader::RxPacket>> chans(4);
    for (const auto& p : merged) {
      EXPECT_LT(p.channel, chans.size());
      if (p.channel < chans.size()) chans[p.channel].push_back(p);
    }
    return chans;
  };
  std::vector<std::vector<std::vector<reader::RxPacket>>> streams;
  for (const auto& merged : decoded) streams.push_back(by_channel(merged));
  const auto& ref = streams.front();
  ASSERT_GE(decoded.front().size(), 4u);  // every channel decodes its tag
  for (std::size_t r = 1; r < streams.size(); ++r) {
    for (std::size_t c = 0; c < ref.size(); ++c) {
      ASSERT_EQ(streams[r][c].size(), ref[c].size())
          << "cell " << r << " channel " << c;
      for (std::size_t i = 0; i < ref[c].size(); ++i) {
        EXPECT_EQ(streams[r][c][i].packet, ref[c][i].packet)
            << "cell " << r << " channel " << c;
        EXPECT_NEAR(streams[r][c][i].time_s, ref[c][i].time_s, lane_dt)
            << "cell " << r << " channel " << c << " packet " << i;
      }
    }
  }
}

TEST(Channelizer, OnGridAddKeepsChannelizerOffGridAddFallsBack) {
  // The add_channel() grid contract: an on-grid subcarrier becomes a new
  // lane (channelizer stays engaged), an off-grid one triggers the logged
  // per-channel fallback — and neither loses anything already decoded.
  using Bank = reader::FdmaRxChain::BankPolicy;
  auto params = fdma_params(dsp::KernelPolicy::kBlock, 2,
                            Bank::kChannelizer);
  params.max_subcarrier_hz = 12000.0;  // headroom for the adds below
  reader::FdmaRxChain bank{params};
  ASSERT_EQ(bank.active_bank(), Bank::kChannelizer);

  const auto wave = fdma_capture(chzr_centers());
  bank.process(wave.data(), wave.size());
  const auto before = bank.drain_packets();
  ASSERT_GE(before.size(), 4u);
  const auto stats_before = bank.all_channel_stats();

  // On grid: 3000 + 4*1500 = 9000. Still the channelizer.
  bank.add_channel({9000.0});
  EXPECT_EQ(bank.active_bank(), Bank::kChannelizer);
  ASSERT_EQ(bank.channel_count(), 5u);
  const auto wave5 = fdma_capture({3000.0, 4500.0, 6000.0, 7500.0, 9000.0});
  bank.process(wave5.data(), wave5.size());
  const auto with_lane = bank.drain_packets();
  ASSERT_GE(with_lane.size(), 5u);
  EXPECT_TRUE(std::any_of(with_lane.begin(), with_lane.end(),
                          [](const auto& p) { return p.channel == 4; }));

  // Off grid: 10312.5 sits between grid steps (4.875 steps from the
  // origin) -> fallback, state preserved. Still a legal subcarrier: a
  // multiple of half the chip rate, one passband away from 9000.
  bank.add_channel({10312.5});
  EXPECT_EQ(bank.active_bank(), Bank::kPerChannel);
  ASSERT_EQ(bank.channel_count(), 6u);
  for (std::size_t c = 0; c < stats_before.size(); ++c) {
    const auto s = bank.channel_stats(c);
    EXPECT_GE(s.frames_ok, stats_before[c].frames_ok) << "channel " << c;
    EXPECT_GE(s.bits, stats_before[c].bits) << "channel " << c;
  }
  // Nothing drained twice, nothing lost: the per-channel bank keeps
  // decoding every channel (including the off-grid newcomer).
  const auto wave6 = fdma_capture(
      {3000.0, 4500.0, 6000.0, 7500.0, 9000.0, 10312.5});
  bank.process(wave6.data(), wave6.size());
  const auto after = bank.drain_packets();
  ASSERT_GE(after.size(), 6u);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_TRUE(std::any_of(after.begin(), after.end(),
                            [&](const auto& p) { return p.channel == c; }))
        << "channel " << c << " stopped decoding after the fallback";
  }
}

}  // namespace
