// Tests for the paper's future-work extensions (Sec. 6.3 / Sec. 2.2):
// FDMA subcarrier backscatter with parallel decoding, 4-PAM higher-order
// modulation, and ambient-vibration energy harvesting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/energy/ambient.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/pam4.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/pzt/transducer.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/pam4_rx.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;

// --------------------------------------------------------- Subcarrier mod

TEST(Subcarrier, ModulateDemodulateRoundTrip) {
  phy::SubcarrierModulator mod{{375.0, 3000.0}};
  EXPECT_EQ(mod.half_periods_per_chip(), 16);
  EXPECT_DOUBLE_EQ(mod.subchip_rate(), 6000.0);
  sim::Rng rng{1};
  for (int trial = 0; trial < 50; ++trial) {
    phy::BitVector chips;
    for (int i = 0; i < 64; ++i) chips.push_back(rng.bernoulli(0.5));
    const auto sub = mod.modulate(chips);
    EXPECT_EQ(sub.size(), chips.size() * 16);
    EXPECT_EQ(mod.demodulate(sub), chips);
  }
}

TEST(Subcarrier, SubchipStreamAlternatesWithinChip) {
  phy::SubcarrierModulator mod{{375.0, 750.0}};  // 4 half-periods per chip
  const auto sub = mod.modulate(phy::BitVector{1});
  ASSERT_EQ(sub.size(), 4u);
  // chip 1 XOR alternating phase 0,1,0,1 -> 1,0,1,0
  EXPECT_EQ(sub.to_string(), "1010");
}

TEST(Subcarrier, RejectsMisalignedRates) {
  EXPECT_THROW((phy::SubcarrierModulator{{375.0, 1000.0}}),
               std::invalid_argument);
  EXPECT_THROW((phy::SubcarrierModulator{{375.0, 187.5}}),
               std::invalid_argument);  // < 2 half-periods per chip
}

TEST(Subcarrier, DemodToleratesMinorityErrors) {
  phy::SubcarrierModulator mod{{375.0, 3000.0}};
  const auto chips = phy::BitVector{1, 0, 1, 1};
  auto sub = mod.modulate(chips);
  // Flip 3 of the 16 sub-chips of the first chip: majority vote holds.
  phy::BitVector corrupted;
  for (std::size_t i = 0; i < sub.size(); ++i) {
    corrupted.push_back(i < 3 ? !sub[i] : sub[i]);
  }
  EXPECT_EQ(mod.demodulate(corrupted), chips);
}

// ---------------------------------------------------------------- FDMA RX

TEST(Fdma, TwoTagsDecodeInTheSameSlot) {
  sim::Rng rng{4};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::FdmaRxChain::Params fp;
  fp.channels = {{3000.0}, {6000.0}};
  reader::FdmaRxChain fdma{fp};

  int ok0 = 0, ok1 = 0;
  const int rounds = 4;
  for (int i = 0; i < rounds; ++i) {
    std::vector<acoustic::BackscatterSource> srcs;
    int k = 0;
    for (double fsc : {3000.0, 6000.0}) {
      const phy::UlPacket pkt{
          .tid = static_cast<std::uint8_t>(k + 1),
          .payload = static_cast<std::uint16_t>(0x200 + i)};
      phy::SubcarrierModulator mod{{375.0, fsc}};
      acoustic::BackscatterSource s;
      s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
      s.chip_rate = mod.subchip_rate();
      s.start_s = 0.03;
      s.amplitude = k == 0 ? 0.2 : 0.15;
      s.phase_rad = 0.8 + k;
      srcs.push_back(s);
      ++k;
    }
    fdma.clear_packets();
    fdma.process(synth.synthesize(srcs, 0.3, rng));
    for (const auto& p : fdma.packets(0)) {
      if (p.tid == 1 && p.payload == 0x200 + i) ++ok0;
    }
    for (const auto& p : fdma.packets(1)) {
      if (p.tid == 2 && p.payload == 0x200 + i) ++ok1;
    }
  }
  EXPECT_GE(ok0, rounds - 1);
  EXPECT_GE(ok1, rounds - 1);
}

TEST(Fdma, ChannelIsolation) {
  // A tag on 6 kHz must not produce packets on the 3 kHz channel.
  sim::Rng rng{6};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::FdmaRxChain::Params fp;
  fp.channels = {{3000.0}, {6000.0}};
  reader::FdmaRxChain fdma{fp};

  const phy::UlPacket pkt{.tid = 2, .payload = 0x321};
  phy::SubcarrierModulator mod{{375.0, 6000.0}};
  acoustic::BackscatterSource s;
  s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
  s.chip_rate = mod.subchip_rate();
  s.start_s = 0.03;
  s.amplitude = 0.25;
  s.phase_rad = 1.4;
  fdma.process(synth.synthesize({s}, 0.3, rng));
  EXPECT_TRUE(fdma.packets(0).empty());
  ASSERT_FALSE(fdma.packets(1).empty());
  EXPECT_EQ(fdma.packets(1).front(), pkt);
}

TEST(Fdma, ValidatesConfiguration) {
  reader::FdmaRxChain::Params none;
  EXPECT_THROW(reader::FdmaRxChain{none}, std::invalid_argument);
  reader::FdmaRxChain::Params close;
  close.channels = {{3000.0}, {3500.0}};  // < 3x chip rate apart
  EXPECT_THROW(reader::FdmaRxChain{close}, std::invalid_argument);

  // Each rejection class carries its own message, so a misconfigured
  // deployment reads the actual problem, not a generic "bad subcarrier".
  const auto rejects = [](reader::FdmaRxChain::Params p,
                          const char* needle) {
    try {
      reader::FdmaRxChain chain{p};
      ADD_FAILURE() << "expected invalid_argument mentioning '" << needle
                    << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  reader::FdmaRxChain::Params bad;
  bad.channels = {{std::numeric_limits<double>::quiet_NaN()}};
  rejects(bad, "finite");
  bad.channels = {{std::numeric_limits<double>::infinity()}};
  rejects(bad, "finite");
  bad.channels = {{-3000.0}};
  rejects(bad, "positive");
  bad.channels = {{0.0}};
  rejects(bad, "positive");
  bad.channels = {{3000.0}, {3000.0}};
  rejects(bad, "duplicate");
  bad.channels = {{3000.0}, {3500.0}};
  rejects(bad, "3x chip rate");
  // The passband limit can only bite after construction (the constructor
  // provisions the DDC around the initial channel list).
  reader::FdmaRxChain::Params ok;
  ok.channels = {{3000.0}};
  reader::FdmaRxChain chain{ok};
  try {
    chain.add_channel({20000.0});
    ADD_FAILURE() << "expected invalid_argument mentioning 'passband'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("passband"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(Fdma, ChannelListGrowthKeepsDecoderCallbacksStable) {
  // Regression for a lifetime hazard in the channel bank: each channel's
  // Fm0StreamDecoder and UlFramer callbacks capture the channel's `this`.
  // If channels were stored by value in a std::vector, growing the bank
  // past the vector's capacity would reallocate and leave every callback
  // dangling (use-after-free on the next decoded bit). Channels must be
  // pinned on the heap: grow the bank through several reallocations of the
  // channel list, then decode on both an original and a late-added channel.
  sim::Rng rng{17};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  reader::FdmaRxChain::Params fp;
  fp.channels = {{3000.0}};
  fp.max_subcarrier_hz = 12000.0;  // provision DDC headroom for growth
  fp.workers = 1;
  reader::FdmaRxChain fdma{fp};

  // 1 -> 6 channels: the unique_ptr list reallocates at capacities 1, 2,
  // and 4. With by-value storage each of these would invalidate earlier
  // channels' callbacks. 9 kHz is skipped: it is the 3rd harmonic of the
  // 3 kHz square subcarrier and would legitimately hear that tag.
  for (double hz : {4500.0, 6000.0, 7500.0, 10500.0, 12000.0}) {
    fdma.add_channel({hz});
  }
  ASSERT_EQ(fdma.channel_count(), 6u);
  // Out-of-passband and too-close additions are still rejected.
  EXPECT_THROW(fdma.add_channel({20000.0}), std::invalid_argument);
  EXPECT_THROW(fdma.add_channel({3200.0}), std::invalid_argument);

  // Decode one tag on the first (pre-growth) channel and one on the last
  // (post-growth) channel simultaneously.
  std::vector<acoustic::BackscatterSource> srcs;
  int k = 0;
  for (double fsc : {3000.0, 12000.0}) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload = static_cast<std::uint16_t>(0x700 + k)};
    phy::SubcarrierModulator mod{{375.0, fsc}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.2;
    s.phase_rad = 0.8 + k;
    srcs.push_back(s);
    ++k;
  }
  fdma.process(synth.synthesize(srcs, 0.3, rng));

  ASSERT_FALSE(fdma.packets(0).empty());
  EXPECT_EQ(fdma.packets(0).front().payload, 0x700);
  ASSERT_FALSE(fdma.packets(5).empty());
  EXPECT_EQ(fdma.packets(5).front().payload, 0x701);
  // The channels in between stayed quiet.
  for (std::size_t c = 1; c < 5; ++c) EXPECT_TRUE(fdma.packets(c).empty());
}

// ------------------------------------------------------------------- PAM4

TEST(Pam4, GrayCodeBijective) {
  for (int msb = 0; msb < 2; ++msb) {
    for (int lsb = 0; lsb < 2; ++lsb) {
      const int idx = phy::Pam4::gray_index(msb != 0, lsb != 0);
      const auto [m, l] = phy::Pam4::gray_bits(idx);
      EXPECT_EQ(m, msb != 0);
      EXPECT_EQ(l, lsb != 0);
    }
  }
  // Adjacent levels differ in exactly one bit (the point of Gray coding).
  for (int idx = 0; idx < 3; ++idx) {
    const auto [m0, l0] = phy::Pam4::gray_bits(idx);
    const auto [m1, l1] = phy::Pam4::gray_bits(idx + 1);
    EXPECT_EQ((m0 != m1) + (l0 != l1), 1);
  }
}

TEST(Pam4, EncodeDecodeRoundTripNoiseless) {
  phy::Pam4 pam;
  sim::Rng rng{3};
  for (int trial = 0; trial < 50; ++trial) {
    phy::BitVector data;
    const int nbits = 2 * (8 + static_cast<int>(rng.uniform_int(24)));
    for (int i = 0; i < nbits; ++i) data.push_back(rng.bernoulli(0.5));
    const auto levels = pam.encode_frame(data);
    EXPECT_EQ(levels.size(), phy::Pam4::kTrainingSymbols +
                                 phy::Pam4::symbol_count(data) + 1);
    const auto decoded = pam.decode_frame(levels, data.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Pam4, DecodeSurvivesModerateNoise) {
  phy::Pam4 pam;
  sim::Rng rng{5};
  phy::BitVector data;
  for (int i = 0; i < 48; ++i) data.push_back(rng.bernoulli(0.5));
  auto levels = pam.encode_frame(data);
  // Level spacing ~0.19; sigma 0.02 is comfortable.
  for (auto& l : levels) l += rng.normal(0.0, 0.02);
  const auto decoded = pam.decode_frame(levels, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Pam4, RejectsDegenerateTraining) {
  phy::Pam4 pam;
  std::vector<double> flat(phy::Pam4::kTrainingSymbols + 10, 0.5);
  EXPECT_FALSE(pam.decode_frame(flat, 16).has_value());
  EXPECT_FALSE(pam.decode_frame({0.1, 0.2}, 16).has_value());  // too short
}

TEST(Pam4, RejectsNonAscendingLevels) {
  phy::Pam4::Params p;
  p.levels = {0.5, 0.4, 0.6, 0.9};
  EXPECT_THROW(phy::Pam4{p}, std::invalid_argument);
}

TEST(Pam4, WaveformRoundTripThroughChannel) {
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  phy::Pam4 pam;
  phy::BitVector data;
  sim::Rng drng{9};
  for (int i = 0; i < 64; ++i) data.push_back(drng.bernoulli(0.5));
  acoustic::BackscatterSource src;
  src.levels = pam.encode_frame(data);
  src.chip_rate = 375.0;
  src.start_s = 0.05;
  src.amplitude = 0.15;
  src.phase_rad = 1.1;
  const auto wave = synth.synthesize(
      {src}, 0.05 + src.levels.size() / 375.0 + 0.05, rng);

  reader::Pam4Receiver::Params rp;
  rp.symbol_rate = 375.0;
  const reader::Pam4Receiver prx{rp};
  const auto decoded = prx.decode(wave, 0.05, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Pam4, DoublesThroughputPerSymbol) {
  // 2 bits per PAM-4 symbol vs 1 bit per 2 FM0 chips at the same symbol
  // rate: 4x bits per line interval.
  phy::BitVector data;
  for (int i = 0; i < 32; ++i) data.push_back(i % 2);
  const auto fm0_chips = phy::Fm0Encoder::encode(data);
  const auto pam_symbols = phy::Pam4{}.encode_frame(data);
  const double fm0_intervals = static_cast<double>(fm0_chips.size());
  const double pam_intervals =
      static_cast<double>(pam_symbols.size());  // incl. training overhead
  EXPECT_LT(pam_intervals, fm0_intervals);
}

// ---------------------------------------------------------------- Ambient

TEST(Ambient, CurrentsOrderedByExcitation) {
  energy::AmbientVibrationSource src;
  EXPECT_DOUBLE_EQ(src.current(energy::DriveState::kParked), 0.0);
  EXPECT_LT(src.current(energy::DriveState::kIdle),
            src.current(energy::DriveState::kCity));
  EXPECT_LT(src.current(energy::DriveState::kCity),
            src.current(energy::DriveState::kHighway));
}

TEST(Ambient, ExcitationIsOutOfBandForTheLink) {
  // Paper Sec. 2.2: driving vibration sits below 0.1 kHz; the 90 kHz
  // resonant link must reject it.
  pzt::Transducer link_pzt;
  for (auto state : {energy::DriveState::kIdle, energy::DriveState::kCity,
                     energy::DriveState::kHighway}) {
    const double f = energy::AmbientVibrationSource::dominant_frequency_hz(state);
    EXPECT_LT(f, 100.0);
    EXPECT_LT(link_pzt.frequency_response(f), 1e-4);
  }
}

TEST(Ambient, HighwayHarvestingShortensChargeTime) {
  energy::Harvester reader_only{energy::Harvester::Params{}};
  reader_only.set_pzt_peak_voltage(0.303);  // tag-11 link
  const double base = reader_only.charge_time(0.0, 2.306);
  ASSERT_GT(base, 0.0);

  energy::Harvester with_ambient{energy::Harvester::Params{}};
  with_ambient.set_pzt_peak_voltage(0.303);
  with_ambient.set_ambient_current(
      energy::AmbientVibrationSource{}.current(energy::DriveState::kHighway));
  const double assisted = with_ambient.charge_time(0.0, 2.306);
  ASSERT_GT(assisted, 0.0);
  EXPECT_LT(assisted, 0.7 * base);
}

TEST(Ambient, CanSustainIdleTagWithoutReader) {
  // Highway harvesting (15 uA) exceeds the IDLE draw (3.8 uA at 2 V):
  // a charged tag stays powered with the reader off.
  energy::Harvester h{energy::Harvester::Params{}};
  h.set_pzt_peak_voltage(0.0);  // reader off
  h.set_ambient_current(
      energy::AmbientVibrationSource{}.current(energy::DriveState::kHighway));
  h.cap().set_voltage(2.4);  // above HTH so the cutoff engages
  h.set_mcu_load(3.8e-6);
  h.step(0.01);
  ASSERT_TRUE(h.mcu_powered());
  for (int i = 0; i < 60000; ++i) h.step(0.01);  // 10 minutes
  EXPECT_TRUE(h.mcu_powered());
  EXPECT_GT(h.cap_voltage(), 1.95);

  // Without ambient harvesting the same tag browns out.
  energy::Harvester dark{energy::Harvester::Params{}};
  dark.set_pzt_peak_voltage(0.0);
  dark.cap().set_voltage(2.4);
  dark.set_mcu_load(3.8e-6);
  dark.step(0.01);
  ASSERT_TRUE(dark.mcu_powered());
  for (int i = 0; i < 60000; ++i) dark.step(0.01);
  EXPECT_FALSE(dark.mcu_powered());
}

}  // namespace
