// Tests for the strain-sensing chain of the Sec. 6.5 case study:
// gauge, Wheatstone bridge, amplifier, ADC, beam model, and the complete
// displacement -> code channel.
#include <gtest/gtest.h>

#include "arachnet/sensing/strain.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet::sensing;
using arachnet::sim::Rng;

TEST(Gauge, ResistanceFollowsGaugeFactor) {
  StrainGauge gauge;
  EXPECT_DOUBLE_EQ(gauge.resistance(0.0), 350.0);
  EXPECT_NEAR(gauge.resistance(1e-3), 350.0 * (1.0 + 2e-3), 1e-9);
  EXPECT_LT(gauge.resistance(-1e-3), 350.0);
}

TEST(Bridge, OutputLinearInStrain) {
  WheatstoneBridge bridge;
  EXPECT_DOUBLE_EQ(bridge.output_voltage(0.0), 0.0);
  const double v1 = bridge.output_voltage(1e-3);
  const double v2 = bridge.output_voltage(2e-3);
  EXPECT_NEAR(v2, 2.0 * v1, 1e-12);
  // Full bridge at 1.8 V excitation: Vout = 1.8 * 2 * eps / 2 = 1.8 eps.
  EXPECT_NEAR(v1, 1.8e-3, 1e-9);
  EXPECT_DOUBLE_EQ(bridge.output_voltage(-1e-3), -v1);
}

TEST(Amplifier, GainOffsetAndClamping) {
  BridgeAmplifier::Params p;
  p.noise_rms_v = 0.0;
  BridgeAmplifier amp{p};
  Rng rng{1};
  EXPECT_NEAR(amp.amplify(0.0, rng), 0.9, 1e-12);          // mid-rail bias
  EXPECT_NEAR(amp.amplify(1e-3, rng), 0.9 + 0.2, 1e-12);   // gain 200
  EXPECT_DOUBLE_EQ(amp.amplify(1.0, rng), 1.8);            // clamps high
  EXPECT_DOUBLE_EQ(amp.amplify(-1.0, rng), 0.0);           // clamps low
}

TEST(Adc, CodesSpanFullScale) {
  Adc adc;
  EXPECT_EQ(adc.full_scale(), 1023);
  EXPECT_EQ(adc.sample(0.0), 0);
  EXPECT_EQ(adc.sample(1.8), 1023);
  EXPECT_EQ(adc.sample(5.0), 1023);   // over-range clamps
  EXPECT_EQ(adc.sample(-1.0), 0);     // under-range clamps
  EXPECT_NEAR(adc.sample(0.9), 512, 1);
}

TEST(Adc, QuantizationRoundTrip) {
  Adc adc;
  for (double v : {0.1, 0.45, 0.9, 1.35, 1.7}) {
    const auto code = adc.sample(v);
    EXPECT_NEAR(adc.to_voltage(code), v, 1.8 / 1023.0);
  }
}

TEST(Beam, StrainProportionalToDisplacement) {
  CantileverBeam beam;
  const double e1 = beam.strain(0.05);
  const double e2 = beam.strain(0.10);
  EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
  EXPECT_DOUBLE_EQ(beam.strain(0.0), 0.0);
  EXPECT_DOUBLE_EQ(beam.strain(-0.05), -e1);
  // Sanity scale: a 10 cm tip deflection on a 0.5 m, 1.5 mm sheet gives
  // sub-percent strain.
  EXPECT_LT(beam.strain(0.10), 0.01);
  EXPECT_GT(beam.strain(0.10), 1e-5);
}

TEST(Module, VoltageMonotoneInDisplacement) {
  // Fig. 17b: clear correlation between displacement and voltage across
  // -10 cm .. +10 cm.
  StrainSensorModule::Params p;
  p.amp.noise_rms_v = 0.0;
  StrainSensorModule module{p};
  Rng rng{3};
  double prev = -1.0;
  for (double d = -0.10; d <= 0.101; d += 0.02) {
    const double v = module.analog_voltage(d, rng);
    EXPECT_GT(v, prev) << "displacement " << d;
    prev = v;
  }
}

TEST(Module, OutputStaysWithinAdcRange) {
  StrainSensorModule module{StrainSensorModule::Params{}};
  Rng rng{5};
  for (double d = -0.10; d <= 0.101; d += 0.01) {
    const auto code = module.sample(d, rng);
    EXPECT_LE(code, 1023);
  }
}

TEST(Module, ZeroDisplacementNearMidScale) {
  StrainSensorModule::Params p;
  p.amp.noise_rms_v = 0.0;
  StrainSensorModule module{p};
  Rng rng{7};
  EXPECT_NEAR(module.sample(0.0, rng), 512, 2);
}

TEST(Module, RepeatedSamplesVaryOnlyByNoise) {
  StrainSensorModule module{StrainSensorModule::Params{}};
  Rng rng{9};
  double min_v = 1e9, max_v = -1e9;
  for (int i = 0; i < 200; ++i) {
    const double v = module.analog_voltage(0.05, rng);
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_LT(max_v - min_v, 0.02);  // ~mV-level noise band
}

TEST(Module, TwelveBitPayloadFits) {
  // UL payload is 12 bits; a 10-bit ADC code always fits.
  StrainSensorModule module{StrainSensorModule::Params{}};
  Rng rng{11};
  for (double d : {-0.1, -0.02, 0.0, 0.07, 0.1}) {
    EXPECT_LT(module.sample(d, rng), 1u << 12);
  }
}

}  // namespace
