// Tests for the reader receive path: FM0 stream decoder semantics and the
// full waveform-to-packet chain, including multi-rate operation, weak links,
// back-to-back packets, and IQ-cluster collision detection.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/fm0_stream_decoder.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/reader/rx_chain.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace {

using namespace arachnet;
using acoustic::BackscatterSource;
using acoustic::UplinkWaveformSynth;
using phy::BitVector;
using phy::Fm0Encoder;
using phy::UlPacket;
using reader::Fm0StreamDecoder;
using reader::RxChain;
using sim::Rng;

// ------------------------------------------------------- Fm0StreamDecoder

struct DecoderHarness {
  std::string bits;
  int desyncs = 0;
  Fm0StreamDecoder decoder;

  explicit DecoderHarness(double chip = 1.0 / 375.0)
      : decoder({chip, 0.35}, [this](bool b) { bits.push_back(b ? '1' : '0'); },
                [this] { ++desyncs; }) {}

  void feed_chips(const BitVector& chips, double chip = 1.0 / 375.0) {
    // Convert chips to runs.
    bool level = chips[0];
    double run = chip;
    for (std::size_t i = 1; i < chips.size(); ++i) {
      if (chips[i] == level) {
        run += chip;
      } else {
        decoder.push_run(run);
        run = chip;
        level = chips[i];
      }
    }
    decoder.push_run(run);
  }
};

TEST(Fm0Stream, DecodesCleanStream) {
  DecoderHarness h;
  const auto data = BitVector::from_string("10110100");
  // Terminator ensures the final run closes.
  h.feed_chips(Fm0Encoder::encode_frame(data));
  EXPECT_EQ(h.bits.substr(0, 8 + Fm0Encoder::kPilotBits),
            std::string(Fm0Encoder::kPilotBits, '0') + "10110100");
  EXPECT_EQ(h.desyncs, 0);
}

TEST(Fm0Stream, ResynchronizesAfterSwallowedChip) {
  // Drop the first chip (silence merge): the decoder must realign at the
  // first full-bit run and decode the data correctly.
  DecoderHarness h;
  const auto data = BitVector::from_string("10110100");
  auto chips = Fm0Encoder::encode_frame(data);
  BitVector clipped;
  for (std::size_t i = 1; i < chips.size(); ++i) clipped.push_back(chips[i]);
  h.feed_chips(clipped);
  // The data must appear somewhere in the decoded stream despite the lost
  // pilot chip.
  EXPECT_NE(h.bits.find("10110100"), std::string::npos) << h.bits;
}

TEST(Fm0Stream, LongRunTriggersDesync) {
  DecoderHarness h;
  h.decoder.push_run(10.0);  // seconds of silence
  EXPECT_EQ(h.desyncs, 1);
  h.decoder.push_run(0.2 / 375.0);  // sub-chip noise blip
  EXPECT_EQ(h.desyncs, 2);
}

TEST(Fm0Stream, ToleratesTimingJitter) {
  Rng rng{3};
  for (int trial = 0; trial < 50; ++trial) {
    DecoderHarness h;
    const double chip = 1.0 / 375.0;
    BitVector data;
    for (int i = 0; i < 24; ++i) data.push_back(rng.bernoulli(0.5));
    const auto chips = Fm0Encoder::encode_frame(data);
    bool level = chips[0];
    double run = chip * rng.uniform(0.85, 1.15);
    for (std::size_t i = 1; i < chips.size(); ++i) {
      if (chips[i] == level) {
        run += chip * rng.uniform(0.85, 1.15);
      } else {
        h.decoder.push_run(run);
        run = chip * rng.uniform(0.85, 1.15);
        level = chips[i];
      }
    }
    h.decoder.push_run(run);
    EXPECT_NE(h.bits.find(data.to_string()), std::string::npos);
  }
}

// ----------------------------------------------------------------- RxChain

struct WaveHarness {
  UplinkWaveformSynth synth{UplinkWaveformSynth::Params{}};
  Rng rng{77};

  BackscatterSource source(const UlPacket& pkt, double amp, double rate,
                           double start = 0.03, double phase = 1.2) {
    BackscatterSource src;
    src.chips = Fm0Encoder::encode_frame(pkt.serialize());
    src.chip_rate = rate;
    src.start_s = start;
    src.amplitude = amp;
    src.phase_rad = phase;
    return src;
  }
};

TEST(RxChain, DecodesSinglePacket) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket pkt{.tid = 9, .payload = 0x5C3};
  const auto wave = h.synth.synthesize({h.source(pkt, 0.2, 375.0)}, 0.35, h.rng);
  rx.process(wave);
  ASSERT_EQ(rx.packets().size(), 1u);
  EXPECT_EQ(rx.packets()[0].packet, pkt);
}

TEST(RxChain, DecodesAtAllPaperBitRates) {
  for (double rate : {93.75, 187.5, 375.0, 750.0, 1500.0, 3000.0}) {
    WaveHarness h;
    RxChain::Params params;
    params.chip_rate = rate;
    RxChain rx{params};
    int decoded = 0;
    for (int i = 0; i < 5; ++i) {
      const UlPacket pkt{.tid = static_cast<std::uint8_t>(i),
                         .payload = static_cast<std::uint16_t>(0x700 + i)};
      const auto wave = h.synth.synthesize({h.source(pkt, 0.3, rate)},
                                           0.05 + 84.0 / rate, h.rng);
      rx.clear_packets();
      rx.process(wave);
      for (const auto& p : rx.packets()) {
        if (p.packet.tid == i) ++decoded;
      }
    }
    EXPECT_GE(decoded, 4) << "rate " << rate;
  }
}

TEST(RxChain, DecodesWeakTag11LevelLinkAt375) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  int decoded = 0;
  for (int i = 0; i < 10; ++i) {
    const UlPacket pkt{.tid = 11, .payload = static_cast<std::uint16_t>(i)};
    const auto wave =
        h.synth.synthesize({h.source(pkt, 0.0128, 375.0)}, 0.30, h.rng);
    rx.clear_packets();
    rx.process(wave);
    for (const auto& p : rx.packets()) {
      if (p.packet.payload == i) ++decoded;
    }
  }
  EXPECT_GE(decoded, 8);
}

TEST(RxChain, QuadraturePhaseStillDecodes) {
  // Reflection in quadrature with the leak: magnitude demod would fade,
  // the axis projection must not.
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket pkt{.tid = 2, .payload = 0x0F0};
  const auto wave = h.synth.synthesize(
      {h.source(pkt, 0.05, 375.0, 0.03, 1.5707963)}, 0.35, h.rng);
  rx.process(wave);
  ASSERT_EQ(rx.packets().size(), 1u);
  EXPECT_EQ(rx.packets()[0].packet, pkt);
}

TEST(RxChain, BackToBackPacketsAcrossWindows) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  int decoded = 0;
  for (int i = 0; i < 8; ++i) {
    const UlPacket pkt{.tid = static_cast<std::uint8_t>(i),
                       .payload = static_cast<std::uint16_t>(i * 111)};
    const auto wave =
        h.synth.synthesize({h.source(pkt, 0.25, 375.0)}, 0.32, h.rng);
    rx.process(wave);
    for (const auto& p : rx.packets()) {
      if (p.packet.tid == i && p.packet.payload == i * 111) ++decoded;
    }
    rx.clear_packets();
  }
  EXPECT_GE(decoded, 7);
}

TEST(RxChain, CorruptedPacketIsDroppedNotMisparsed) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket pkt{.tid = 5, .payload = 0x123};
  auto src = h.source(pkt, 0.2, 375.0);
  // Truncate the chips mid-packet: reception must not produce a packet.
  src.chips = src.chips.slice(0, src.chips.size() / 2);
  const auto wave = h.synth.synthesize({src}, 0.3, h.rng);
  rx.process(wave);
  EXPECT_TRUE(rx.packets().empty());
}

TEST(RxChain, CollisionDetectedViaIqClusters) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket a{.tid = 1, .payload = 0x111};
  const UlPacket b{.tid = 2, .payload = 0x222};
  // Overlapping transmissions with distinct phases.
  const auto wave = h.synth.synthesize(
      {h.source(a, 0.2, 375.0, 0.03, 0.9), h.source(b, 0.15, 375.0, 0.05, 2.2)},
      0.4, h.rng);
  rx.process(wave);
  Rng cluster_rng{5};
  EXPECT_TRUE(rx.collision_detected(cluster_rng));
}

TEST(RxChain, SingleTagIsNotFlaggedAsCollision) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket pkt{.tid = 1, .payload = 0x111};
  const auto wave =
      h.synth.synthesize({h.source(pkt, 0.2, 375.0)}, 0.35, h.rng);
  rx.process(wave);
  Rng cluster_rng{5};
  EXPECT_FALSE(rx.collision_detected(cluster_rng));
}

TEST(RxChain, ResetClearsState) {
  WaveHarness h;
  RxChain rx{RxChain::Params{}};
  const UlPacket pkt{.tid = 3, .payload = 0x333};
  rx.process(h.synth.synthesize({h.source(pkt, 0.2, 375.0)}, 0.3, h.rng));
  ASSERT_FALSE(rx.iq_points().empty());
  rx.reset();
  rx.clear_packets();
  EXPECT_TRUE(rx.iq_points().empty());
  EXPECT_TRUE(rx.packets().empty());
  // Chain still works after reset.
  rx.process(h.synth.synthesize({h.source(pkt, 0.2, 375.0)}, 0.3, h.rng));
  EXPECT_EQ(rx.packets().size(), 1u);
}

TEST(RxChain, AmbientVehicleVibrationDoesNotBreakDecoding) {
  // Strong sub-100 Hz vibration (driving conditions) must not affect the
  // 90 kHz link (paper Sec. 2.2 discussion).
  WaveHarness h;
  UplinkWaveformSynth::Params wp;
  wp.ambient_amplitude = 2.0;  // large low-frequency component
  wp.ambient_hz = 35.0;
  h.synth = UplinkWaveformSynth{wp};
  RxChain rx{RxChain::Params{}};
  int decoded = 0;
  for (int i = 0; i < 5; ++i) {
    const UlPacket pkt{.tid = 6, .payload = static_cast<std::uint16_t>(i)};
    const auto wave =
        h.synth.synthesize({h.source(pkt, 0.1, 375.0)}, 0.3, h.rng);
    rx.clear_packets();
    rx.process(wave);
    for (const auto& p : rx.packets()) {
      if (p.packet.payload == i) ++decoded;
    }
  }
  EXPECT_GE(decoded, 4);
}

// ------------------------------------------------ FdmaRxChain reentrancy

TEST(FdmaRx, AddChannelWhileProcessingThrows) {
  // The fleet planner re-assigns channels at runtime; an add_channel()
  // racing a process() call must fail loudly (std::logic_error) instead of
  // corrupting the channel list mid-fan-out. The guard is an always-on
  // atomic flag — this holds in release builds too.
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = 1;
  fp.channels = {{3000.0}, {4500.0}};
  fp.max_subcarrier_hz = 9000.0;  // headroom for the post-join add
  reader::FdmaRxChain bank{fp};

  // ~16 s of silence at 500 kS/s: a multi-second process() window, so the
  // in-flight check below races a microsecond gap against seconds of work.
  const std::vector<double> block(static_cast<std::size_t>(1) << 23, 0.0);
  std::thread worker([&] { bank.process(block); });
  bool saw_inflight = false;
  for (int spin = 0; spin < 200000; ++spin) {
    if (bank.processing_now()) {
      saw_inflight = true;
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(saw_inflight) << "process() never observed in flight";
  EXPECT_THROW(bank.add_channel({6000.0}), std::logic_error);
  worker.join();

  // Once the processing thread retires, the same call succeeds and the
  // bank keeps working.
  EXPECT_FALSE(bank.processing_now());
  EXPECT_NO_THROW(bank.add_channel({6000.0}));
  EXPECT_EQ(bank.channel_count(), 3u);
  bank.process(block.data(), 12500);
}

// --------------------------------------------------- per-instance scopes

TEST(RealtimeReaderScope, TwoReadersShareOneRegistryWithoutColliding) {
  telemetry::MetricsRegistry registry;
  reader::RealtimeReader::Params p0;
  p0.metrics = &registry;
  p0.metrics_scope = "r0.";
  reader::RealtimeReader r0{p0};
  reader::RealtimeReader::Params p1;
  p1.metrics = &registry;
  p1.metrics_scope = "r1.";
  reader::RealtimeReader r1{p1};
  r0.start();
  r1.start();

  Rng rng{7};
  UplinkWaveformSynth synth{UplinkWaveformSynth::Params{}};
  const UlPacket pkt{.tid = 9, .payload = 0x5C3};
  BackscatterSource src;
  src.chips = Fm0Encoder::encode_frame(pkt.serialize());
  src.chip_rate = 375.0;
  src.start_s = 0.03;
  src.amplitude = 0.2;
  src.phase_rad = 1.2;
  const auto wave = synth.synthesize({src}, 0.35, rng);

  // Only r0 sees traffic; r1 stays idle on the same registry.
  constexpr std::size_t kBlock = 12500;
  std::size_t blocks = 0;
  for (std::size_t off = 0; off < wave.size(); off += kBlock, ++blocks) {
    const std::size_t len = std::min(kBlock, wave.size() - off);
    ASSERT_TRUE(r0.submit({wave.begin() + off, wave.begin() + off + len}));
  }
  r0.stop();
  r1.stop();

  std::size_t fetched = 0;
  while (r0.poll_packet()) ++fetched;
  ASSERT_GT(fetched, 0u);
  EXPECT_EQ(registry.counter("r0.reader.packets_emitted").value(), fetched);
  EXPECT_EQ(registry.counter("r0.reader.blocks").value(), blocks);
  EXPECT_EQ(registry.counter("r1.reader.packets_emitted").value(), 0u);
  EXPECT_EQ(registry.counter("r1.reader.blocks").value(), 0u);
  // The unscoped historical name is untouched by scoped instances.
  EXPECT_EQ(registry.counter("reader.blocks").value(), 0u);
}

}  // namespace
