// Threaded reader paths: ring-buffer stress, worker-pool fork/join, the
// parallel FDMA bank's bit-exact parity with the sequential path, and
// RealtimeReader shutdown ordering. Labeled `concurrency` in CTest so the
// whole file runs under TSan via `ctest -L concurrency` on a
// -DARACHNET_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/realtime_reader.hpp"

namespace {

using namespace arachnet;

// ------------------------------------------------------------ RingBuffer

TEST(RingBufferStress, ProducersAndConsumersAccountForEveryItem) {
  // 2 producers x 2 consumers through a small buffer: back-pressure and
  // wakeups are exercised constantly. Every pushed value must be popped
  // exactly once.
  dsp::RingBuffer<int> buf{4};
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(buf.push(p * kPerProducer + i));
      }
    });
  }

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (auto v = buf.pop()) received[c].push_back(*v);
    });
  }

  for (auto& t : producers) t.join();
  buf.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
  }
}

TEST(RingBufferStress, DrainsQueuedItemsAfterClose) {
  dsp::RingBuffer<int> buf{8};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(buf.push(i));
  buf.close();
  EXPECT_FALSE(buf.push(99));
  for (int i = 0; i < 5; ++i) {
    auto v = buf.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(buf.pop().has_value());
}

TEST(RingBufferStress, WrapsAroundManyTimes) {
  // Capacity-3 buffer cycled far past its capacity: the circular indices
  // must keep FIFO order through every wrap.
  dsp::RingBuffer<int> buf{3};
  int popped = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(buf.push(i));
    if (i % 2 == 1) {
      // Pop two at a time on odd iterations to shift the phase.
      for (int k = 0; k < 2; ++k) {
        auto v = buf.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, popped++);
      }
    }
  }
}

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  dsp::WorkerPool pool{3};
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.run(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPool, ReusableAcrossManyDispatches) {
  dsp::WorkerPool pool{2};
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = static_cast<std::size_t>(1 + round % 7);
    for (std::size_t i = 0; i < n; ++i) expected += i;
    pool.run(n, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(WorkerPool, ZeroThreadsRunsInline) {
  dsp::WorkerPool pool{0};
  std::vector<int> order;
  pool.run(4, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WorkerPool, BackToBackDispatchesNeverLeakAcrossEpochs) {
  // Regression for the stale-worker epoch race: with more workers than
  // indices and back-to-back dispatches, a worker that wakes for round r
  // but is preempted before its first claim must not steal indices of
  // round r+1 (it would execute round r's already-destroyed task). Each
  // round targets a fresh stack array, so a cross-epoch claim shows up as
  // a missed index in the current round.
  dsp::WorkerPool pool{4};
  constexpr int kRounds = 4000;
  constexpr std::size_t kN = 2;  // caller claims most; workers oversleep
  for (int r = 0; r < kRounds; ++r) {
    std::array<std::atomic<int>, kN> hits{};
    pool.run(kN, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << r << " index " << i;
    }
  }
}

TEST(WorkerPool, TaskExceptionRethrownOnCallerAndPoolStaysUsable) {
  dsp::WorkerPool pool{2};
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t i) {
                          if (i == 3) throw std::runtime_error{"boom"};
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
               std::runtime_error);
  // The throwing index is still credited; the other seven executed.
  EXPECT_EQ(ran.load(), 7);
  // Epoch/completion state must be left consistent for the next dispatch.
  std::atomic<int> after{0};
  pool.run(5,
           [&](std::size_t) { after.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(after.load(), 5);
}

// ----------------------------------------------- FDMA parallel parity

// Renders one uplink window with one tag per subcarrier, all overlapping.
std::vector<double> synth_capture(const std::vector<double>& subcarriers,
                                  int round, sim::Rng& rng,
                                  acoustic::UplinkWaveformSynth& synth) {
  std::vector<acoustic::BackscatterSource> srcs;
  int k = 0;
  for (double fsc : subcarriers) {
    const phy::UlPacket pkt{
        .tid = static_cast<std::uint8_t>(k + 1),
        .payload = static_cast<std::uint16_t>(0x400 + 16 * round + k)};
    phy::SubcarrierModulator mod{{375.0, fsc}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * (k % 5);
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
    ++k;
  }
  return synth.synthesize(srcs, 0.3, rng);
}

reader::FdmaRxChain::Params twelve_channel_params(std::size_t workers) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;  // 62.5 kS/s IQ rate: room for 12 subcarriers
  fp.workers = workers;
  // Multiples of half the chip rate (the subcarrier modulator's grid),
  // 4x chip-rate spacing: 3.0, 4.5, ..., 19.5 kHz.
  for (int k = 0; k < 12; ++k) {
    fp.channels.push_back({3000.0 + 1500.0 * k});
  }
  return fp;
}

TEST(FdmaParity, ParallelBankMatchesSequentialBitExactly) {
  std::vector<double> subcarriers;
  for (const auto& c : twelve_channel_params(1).channels) {
    subcarriers.push_back(c.subcarrier_hz);
  }

  // Two independent synthesizer+RNG pairs render identical waveforms.
  sim::Rng rng_a{42}, rng_b{42};
  acoustic::UplinkWaveformSynth synth_a{
      acoustic::UplinkWaveformSynth::Params{}};
  acoustic::UplinkWaveformSynth synth_b{
      acoustic::UplinkWaveformSynth::Params{}};

  reader::FdmaRxChain sequential{twelve_channel_params(1)};
  reader::FdmaRxChain parallel{twelve_channel_params(4)};
  EXPECT_EQ(sequential.worker_count(), 1u);
  EXPECT_EQ(parallel.worker_count(), 4u);

  std::size_t total_packets = 0;
  for (int round = 0; round < 2; ++round) {
    const auto wave_a = synth_capture(subcarriers, round, rng_a, synth_a);
    const auto wave_b = synth_capture(subcarriers, round, rng_b, synth_b);
    ASSERT_EQ(wave_a, wave_b);
    // Feed in DAQ-sized chunks so the parallel bank crosses many
    // fan-out/merge boundaries.
    constexpr std::size_t kBlock = 20000;
    for (std::size_t off = 0; off < wave_a.size(); off += kBlock) {
      const std::size_t len = std::min(kBlock, wave_a.size() - off);
      const std::vector<double> block(wave_a.begin() + off,
                                      wave_a.begin() + off + len);
      sequential.process(block);
      parallel.process(block);
    }
  }

  // Exact per-channel packet sets, in order.
  for (std::size_t c = 0; c < sequential.channel_count(); ++c) {
    ASSERT_EQ(sequential.packets(c), parallel.packets(c))
        << "channel " << c << " diverged";
    total_packets += sequential.packets(c).size();
    // Per-channel counters must agree too (both banks saw the same IQ).
    const auto sa = sequential.channel_stats(c);
    const auto pa = parallel.channel_stats(c);
    EXPECT_EQ(sa.iq_samples, pa.iq_samples);
    EXPECT_EQ(sa.bits, pa.bits);
    EXPECT_EQ(sa.frames_ok, pa.frames_ok);
    EXPECT_EQ(sa.crc_failures, pa.crc_failures);
  }
  // The capture must actually decode on most channels for the parity to
  // be meaningful (12 tags x 2 rounds = 24 opportunities).
  EXPECT_GE(total_packets, 16u);

  // The deterministic merge must agree as well.
  const auto seq_merged = sequential.drain_packets();
  const auto par_merged = parallel.drain_packets();
  ASSERT_EQ(seq_merged.size(), par_merged.size());
  for (std::size_t i = 0; i < seq_merged.size(); ++i) {
    EXPECT_EQ(seq_merged[i].packet, par_merged[i].packet);
    EXPECT_EQ(seq_merged[i].channel, par_merged[i].channel);
    EXPECT_DOUBLE_EQ(seq_merged[i].time_s, par_merged[i].time_s);
  }
}

// --------------------------------------------- RealtimeReader shutdown

TEST(RealtimeReaderShutdown, StopMidStreamLosesNothingBeforeClose) {
  // Queue several packet-bearing blocks, then stop() while the worker is
  // still mid-stream: every block accepted before the close point must be
  // fully processed and its packets fetchable, and stop() must not
  // deadlock (the test would hang).
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  params.input_capacity = 64;  // accept the whole stream up front
  reader::RealtimeReader rtr{params};
  rtr.start();

  constexpr int kPackets = 6;
  std::vector<phy::UlPacket> sent;
  for (int i = 0; i < kPackets; ++i) {
    const phy::UlPacket pkt{.tid = 3,
                            .payload = static_cast<std::uint16_t>(0x500 + i)};
    sent.push_back(pkt);
    acoustic::BackscatterSource s;
    s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    s.chip_rate = 375.0;
    s.start_s = 0.02;
    s.amplitude = 0.2;
    s.phase_rad = 1.0;
    // One packet per 0.28 s window, split into DAQ-sized blocks.
    const auto wave = synth.synthesize({s}, 0.28, rng);
    constexpr std::size_t kBlock = 10000;
    for (std::size_t off = 0; off < wave.size(); off += kBlock) {
      const std::size_t len = std::min(kBlock, wave.size() - off);
      ASSERT_TRUE(rtr.submit({wave.begin() + off, wave.begin() + off + len}));
    }
  }

  // Close the input while blocks are still queued: the worker must drain
  // all of them before exiting.
  rtr.stop();
  EXPECT_FALSE(rtr.submit(std::vector<double>(100, 0.0)));

  std::vector<phy::UlPacket> got;
  while (auto pkt = rtr.wait_packet()) got.push_back(pkt->packet);
  ASSERT_EQ(got.size(), sent.size());
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              sent[static_cast<std::size_t>(i)]);
  }

  const auto stats = rtr.stats();
  EXPECT_EQ(stats.input_depth, 0u);
  ASSERT_EQ(stats.channels.size(), 1u);
  EXPECT_EQ(stats.channels[0].frames_ok,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_GT(stats.channels[0].bits, 0u);
}

TEST(RealtimeReaderShutdown, DroppedPacketsAreCountedAsDroppedNotEmitted) {
  // Regression: packets_emitted_ used to double as the single-chain
  // emission cursor, so a packet dropped on a full output queue was still
  // reported as emitted. With a capacity-1 output, drop_on_full_output,
  // and nobody polling, only the first decoded packet fits — the other
  // two must surface as drops, while the decode counters still see all 3.
  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  params.input_capacity = 64;
  params.output_capacity = 1;
  params.drop_on_full_output = true;
  reader::RealtimeReader rtr{params};
  rtr.start();

  constexpr int kPackets = 3;
  std::vector<phy::UlPacket> sent;
  for (int i = 0; i < kPackets; ++i) {
    const phy::UlPacket pkt{.tid = 3,
                            .payload = static_cast<std::uint16_t>(0x700 + i)};
    sent.push_back(pkt);
    acoustic::BackscatterSource s;
    s.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
    s.chip_rate = 375.0;
    s.start_s = 0.02;
    s.amplitude = 0.2;
    s.phase_rad = 1.0;
    const auto wave = synth.synthesize({s}, 0.28, rng);
    constexpr std::size_t kBlock = 10000;
    for (std::size_t off = 0; off < wave.size(); off += kBlock) {
      const std::size_t len = std::min(kBlock, wave.size() - off);
      ASSERT_TRUE(rtr.submit({wave.begin() + off, wave.begin() + off + len}));
    }
  }
  rtr.stop();

  const auto stats = rtr.stats();
  EXPECT_EQ(stats.packets_emitted, 1u);
  EXPECT_EQ(stats.packets_dropped, static_cast<std::uint64_t>(kPackets - 1));
  ASSERT_EQ(stats.channels.size(), 1u);
  EXPECT_EQ(stats.channels[0].frames_ok,
            static_cast<std::uint64_t>(kPackets));

  // Exactly the first decoded packet is fetchable.
  std::vector<phy::UlPacket> got;
  while (auto pkt = rtr.wait_packet()) got.push_back(pkt->packet);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], sent[0]);
}

TEST(RealtimeReaderShutdown, FdmaModeDecodesTagsChannelsAndStats) {
  // FDMA-bank mode: two tags on different subcarriers through the
  // threaded reader; packets carry channel indices and per-channel stats
  // are populated.
  sim::Rng rng{12};
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};

  reader::RealtimeReader::Params params;
  reader::FdmaRxChain::Params fp;
  fp.channels = {{3000.0}, {6000.0}};
  fp.workers = 2;
  params.fdma = fp;
  params.input_capacity = 64;
  reader::RealtimeReader rtr{params};
  rtr.start();

  std::vector<acoustic::BackscatterSource> srcs;
  std::vector<phy::UlPacket> sent;
  int k = 0;
  for (double fsc : {3000.0, 6000.0}) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload = static_cast<std::uint16_t>(0x600 + k)};
    sent.push_back(pkt);
    phy::SubcarrierModulator mod{{375.0, fsc}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = k == 0 ? 0.2 : 0.15;
    s.phase_rad = 0.8 + k;
    srcs.push_back(s);
    ++k;
  }
  const auto wave = synth.synthesize(srcs, 0.3, rng);
  constexpr std::size_t kBlock = 25000;
  for (std::size_t off = 0; off < wave.size(); off += kBlock) {
    const std::size_t len = std::min(kBlock, wave.size() - off);
    ASSERT_TRUE(rtr.submit({wave.begin() + off, wave.begin() + off + len}));
  }
  rtr.stop();

  std::vector<reader::RxPacket> got;
  while (auto pkt = rtr.wait_packet()) got.push_back(*pkt);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& rx : got) {
    ASSERT_LT(rx.channel, sent.size());
    EXPECT_EQ(rx.packet, sent[rx.channel]);
    EXPECT_GT(rx.time_s, 0.0);
  }

  const auto stats = rtr.stats();
  ASSERT_EQ(stats.channels.size(), 2u);
  for (const auto& ch : stats.channels) {
    EXPECT_EQ(ch.frames_ok, 1u);
    EXPECT_GT(ch.bits, 0u);
    EXPECT_GT(ch.iq_samples, 0u);
  }
  EXPECT_EQ(stats.samples_processed, wave.size());
}

}  // namespace
