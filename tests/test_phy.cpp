// Tests for the PHY layer: bit vectors, CRC, FM0/PIE line codes, packet
// serialization, and streaming framers. Includes property-style sweeps over
// all payload/TID values and random bit strings.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "arachnet/phy/bits.hpp"
#include "arachnet/phy/crc.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/framer.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/pie.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet::phy;
using arachnet::sim::Rng;

BitVector random_bits(Rng& rng, std::size_t n) {
  BitVector v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(rng.bernoulli(0.5));
  return v;
}

// ---------------------------------------------------------------- BitVector

TEST(BitVector, AppendAndReadUintRoundTrip) {
  BitVector v;
  v.append_uint(0xABC, 12);
  v.append_uint(0x5, 4);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_EQ(v.read_uint(0, 12), 0xABCu);
  EXPECT_EQ(v.read_uint(12, 4), 0x5u);
}

TEST(BitVector, FromStringAndToString) {
  const auto v = BitVector::from_string("1010 1100");
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.to_string(), "10101100");
  EXPECT_THROW(BitVector::from_string("10a"), std::invalid_argument);
}

TEST(BitVector, SliceBoundsChecked) {
  const auto v = BitVector::from_string("110011");
  EXPECT_EQ(v.slice(2, 2).to_string(), "00");
  EXPECT_THROW(v.slice(4, 3), std::out_of_range);
  EXPECT_THROW(v.read_uint(4, 3), std::out_of_range);
}

TEST(BitVector, EqualityAndAppend) {
  auto a = BitVector::from_string("101");
  const auto b = BitVector::from_string("01");
  a.append(b);
  EXPECT_EQ(a, BitVector::from_string("10101"));
}

// ---------------------------------------------------------------------- CRC

TEST(Crc, Crc8KnownVectors) {
  // CRC-8 (poly 0x07, init 0x00) of "123456789" is 0xF4.
  const std::array<std::uint8_t, 9> msg{'1', '2', '3', '4', '5',
                                        '6', '7', '8', '9'};
  EXPECT_EQ(crc8(msg), 0xF4);
}

TEST(Crc, Crc8BitsMatchesByteVersionOnByteAlignedInput) {
  const std::array<std::uint8_t, 3> bytes{0xDE, 0xAD, 0x42};
  BitVector bits;
  for (auto b : bytes) bits.append_uint(b, 8);
  EXPECT_EQ(crc8_bits(bits), crc8(bytes));
}

TEST(Crc, Crc8DetectsSingleBitFlips) {
  Rng rng{3};
  for (int trial = 0; trial < 50; ++trial) {
    BitVector bits = random_bits(rng, 16);
    const auto reference = crc8_bits(bits);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      BitVector corrupted;
      for (std::size_t j = 0; j < bits.size(); ++j) {
        corrupted.push_back(i == j ? !bits[j] : bits[j]);
      }
      EXPECT_NE(crc8_bits(corrupted), reference)
          << "flip at " << i << " undetected";
    }
  }
}

TEST(Crc, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::array<std::uint8_t, 9> msg{'1', '2', '3', '4', '5',
                                        '6', '7', '8', '9'};
  EXPECT_EQ(crc16(msg), 0x29B1);
}

// ---------------------------------------------------------------------- FM0

TEST(Fm0, PaperChipPairSemantics) {
  // Bit 0 -> chip pair with a mid transition (10/01); bit 1 -> equal chips.
  const auto chips = Fm0Encoder::encode(BitVector{0, 1}, false);
  ASSERT_EQ(chips.size(), 4u);
  EXPECT_NE(chips[0], chips[1]);  // bit 0: mid transition
  EXPECT_EQ(chips[2], chips[3]);  // bit 1: no mid transition
  EXPECT_NE(chips[1], chips[2]);  // boundary transition between bits
}

TEST(Fm0, EncodeDecodeRoundTripRandom) {
  Rng rng{5};
  for (int trial = 0; trial < 200; ++trial) {
    const auto data = random_bits(rng, 1 + rng.uniform_int(64));
    const bool init = rng.bernoulli(0.5);
    const auto chips = Fm0Encoder::encode(data, init);
    const auto result = Fm0Decoder::decode(chips, init);
    EXPECT_EQ(result.bits, data);
    EXPECT_EQ(result.violations, 0u);
  }
}

TEST(Fm0, BoundaryViolationDetected) {
  const auto data = BitVector{1, 1, 1};
  auto chips = Fm0Encoder::encode(data, false);
  // Force a missing boundary transition by duplicating the previous level.
  BitVector corrupted;
  corrupted.push_back(chips[0]);
  corrupted.push_back(chips[1]);
  corrupted.push_back(chips[1]);  // should have inverted here
  corrupted.push_back(chips[1]);
  corrupted.push_back(chips[4]);
  corrupted.push_back(chips[5]);
  const auto result = Fm0Decoder::decode(corrupted, false);
  EXPECT_GT(result.violations, 0u);
}

TEST(Fm0, DecodeRunsRoundTrip) {
  Rng rng{8};
  const double half = 1.0 / 750.0;  // 375 bps raw chips
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = random_bits(rng, 1 + rng.uniform_int(48));
    const auto chips = Fm0Encoder::encode(data, false);
    // Convert chips to run lengths.
    std::vector<double> runs;
    bool level = chips[0];
    double run = half;
    for (std::size_t i = 1; i < chips.size(); ++i) {
      if (chips[i] == level) {
        run += half;
      } else {
        runs.push_back(run);
        run = half;
        level = chips[i];
      }
    }
    runs.push_back(run);
    const auto decoded = Fm0Decoder::decode_runs(runs, half);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

TEST(Fm0, DecodeRunsToleratesJitter) {
  Rng rng{12};
  const double half = 1.0 / 750.0;
  const auto data = BitVector{1, 0, 1, 1, 0, 0, 1, 0};
  const auto chips = Fm0Encoder::encode(data, false);
  std::vector<double> runs;
  bool level = chips[0];
  double run = half;
  for (std::size_t i = 1; i < chips.size(); ++i) {
    if (chips[i] == level) {
      run += half;
    } else {
      runs.push_back(run * rng.uniform(0.85, 1.15));
      run = half;
      level = chips[i];
    }
  }
  runs.push_back(run);
  const auto decoded = Fm0Decoder::decode_runs(runs, half);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Fm0, DecodeRunsRejectsGarbage) {
  const double half = 1.0 / 750.0;
  EXPECT_FALSE(
      Fm0Decoder::decode_runs({half * 3.5, half}, half).has_value());
}

// ---------------------------------------------------------------------- PIE

TEST(Pie, ChipPatterns) {
  EXPECT_EQ(PieEncoder::encode(BitVector{0}).to_string(), "10");
  EXPECT_EQ(PieEncoder::encode(BitVector{1}).to_string(), "110");
  EXPECT_EQ(PieEncoder::encode(BitVector{1, 0, 1}).to_string(), "11010110");
}

TEST(Pie, ChipCount) {
  EXPECT_EQ(PieEncoder::chip_count(BitVector{0, 0}), 4u);
  EXPECT_EQ(PieEncoder::chip_count(BitVector{1, 1}), 6u);
  EXPECT_EQ(PieEncoder::chip_count(BitVector{1, 0}), 5u);
}

TEST(Pie, PulseClassification) {
  const double chip = 1.0 / 250.0;
  EXPECT_EQ(PieDecoder::classify_pulse(chip, chip), false);
  EXPECT_EQ(PieDecoder::classify_pulse(2.0 * chip, chip), true);
  EXPECT_FALSE(PieDecoder::classify_pulse(3.2 * chip, chip).has_value());
  EXPECT_FALSE(PieDecoder::classify_pulse(0.2 * chip, chip).has_value());
}

TEST(Pie, ThresholdDecisionMatchesFirmwareRule) {
  const double chip = 1.0 / 250.0;
  EXPECT_FALSE(PieDecoder::threshold_decision(1.2 * chip, chip));
  EXPECT_TRUE(PieDecoder::threshold_decision(1.8 * chip, chip));
}

TEST(Pie, DecodePulseSequenceRoundTrip) {
  Rng rng{31};
  const double chip = 1.0 / 250.0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto data = random_bits(rng, 10);
    std::vector<double> pulses;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double nominal = data[i] ? 2.0 * chip : chip;
      pulses.push_back(nominal * rng.uniform(0.9, 1.1));
    }
    const auto decoded = PieDecoder::decode(pulses, chip);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

// ------------------------------------------------------------------ Packets

TEST(Packet, UlSerializeHasDocumentedGeometry) {
  const UlPacket pkt{.tid = 0xA, .payload = 0x123};
  const auto frame = pkt.serialize();
  EXPECT_EQ(frame.size(), static_cast<std::size_t>(kUlPacketBits));
  EXPECT_EQ(frame.slice(0, kUlPreambleBits), ul_preamble());
  EXPECT_EQ(frame.read_uint(8, 4), 0xAu);
  EXPECT_EQ(frame.read_uint(12, 12), 0x123u);
}

TEST(Packet, UlRoundTripAllTidsAndPayloadSample) {
  for (std::uint8_t tid = 0; tid < 16; ++tid) {
    for (std::uint16_t payload : {0x000, 0x001, 0x7FF, 0x800, 0xFFF}) {
      const UlPacket pkt{.tid = tid,
                         .payload = static_cast<std::uint16_t>(payload)};
      const auto parsed = UlPacket::parse(pkt.serialize());
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, pkt);
    }
  }
}

TEST(Packet, UlParseRejectsAnySingleBitFlip) {
  const UlPacket pkt{.tid = 0x5, .payload = 0xACE};
  const auto frame = pkt.serialize();
  for (std::size_t i = 0; i < frame.size(); ++i) {
    BitVector corrupted;
    for (std::size_t j = 0; j < frame.size(); ++j) {
      corrupted.push_back(i == j ? !frame[j] : frame[j]);
    }
    const auto parsed = UlPacket::parse(corrupted);
    if (parsed.has_value()) {
      // A flip must never yield a *different* accepted packet.
      EXPECT_EQ(*parsed, pkt) << "bit " << i;
    }
  }
}

TEST(Packet, DlCommandNibbleRoundTrip) {
  for (int mask = 0; mask < 8; ++mask) {
    const DlCommand cmd{.ack = (mask & 1) != 0,
                        .empty = (mask & 2) != 0,
                        .reset = (mask & 4) != 0};
    EXPECT_EQ(DlCommand::from_nibble(cmd.to_nibble()), cmd);
  }
}

TEST(Packet, DlBeaconRoundTrip) {
  const DlBeacon beacon{.cmd = {.ack = true, .empty = false, .reset = true}};
  const auto parsed = DlBeacon::parse(beacon.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, beacon);
}

TEST(Packet, DurationsMatchPaperScale) {
  // 32-bit UL packet at 375 bps raw: 64 chips -> ~170.7 ms ("~200 ms").
  EXPECT_NEAR(ul_packet_duration(375.0), 64.0 / 375.0, 1e-12);
  EXPECT_GT(ul_packet_duration(), 0.15);
  EXPECT_LT(ul_packet_duration(), 0.25);
  // DL beacon at 250 bps: 10 bits, 20-30 chips -> 80-120 ms.
  const DlBeacon beacon{};
  EXPECT_GT(dl_beacon_duration(beacon), 0.05);
  EXPECT_LT(dl_beacon_duration(beacon), dl_beacon_max_duration());
  EXPECT_NEAR(dl_beacon_max_duration(250.0), 30.0 / 250.0, 1e-12);
}

// ------------------------------------------------------------------ Framers

TEST(Framer, UlFramerFindsPacketInNoise) {
  Rng rng{99};
  std::vector<UlPacket> received;
  UlFramer framer{[&](const UlPacket& p) { received.push_back(p); }};

  const UlPacket pkt{.tid = 0x3, .payload = 0x456};
  const auto frame = pkt.serialize();
  // Random leading bits, then the packet, then random trailing bits.
  for (int i = 0; i < 64; ++i) framer.push(rng.bernoulli(0.5));
  framer.reset();  // make sure reset rearms cleanly
  for (int i = 0; i < 32; ++i) framer.push(rng.bernoulli(0.5));
  for (std::size_t i = 0; i < frame.size(); ++i) framer.push(frame[i]);
  for (int i = 0; i < 32; ++i) framer.push(rng.bernoulli(0.5));

  ASSERT_GE(received.size(), 1u);
  EXPECT_EQ(received.front(), pkt);
}

TEST(Framer, UlFramerCountsCrcFailures) {
  std::size_t packets = 0;
  UlFramer framer{[&](const UlPacket&) { ++packets; }};
  auto frame = UlPacket{.tid = 1, .payload = 2}.serialize();
  // Corrupt one payload bit (after the preamble so framing still locks).
  BitVector corrupted;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    corrupted.push_back(i == 20 ? !frame[i] : frame[i]);
  }
  for (std::size_t i = 0; i < corrupted.size(); ++i) framer.push(corrupted[i]);
  EXPECT_EQ(packets, 0u);
  EXPECT_EQ(framer.crc_failures(), 1u);
}

TEST(Framer, BackToBackPackets) {
  std::vector<UlPacket> received;
  UlFramer framer{[&](const UlPacket& p) { received.push_back(p); }};
  for (std::uint8_t tid = 0; tid < 5; ++tid) {
    const auto frame =
        UlPacket{.tid = tid, .payload = static_cast<std::uint16_t>(100u + tid)}
            .serialize();
    for (std::size_t i = 0; i < frame.size(); ++i) framer.push(frame[i]);
  }
  ASSERT_EQ(received.size(), 5u);
  for (std::uint8_t tid = 0; tid < 5; ++tid) {
    EXPECT_EQ(received[tid].tid, tid);
    EXPECT_EQ(received[tid].payload, 100u + tid);
  }
}

TEST(Framer, DlFramerDecodesBeacon) {
  std::vector<DlBeacon> received;
  DlFramer framer{[&](const DlBeacon& b) { received.push_back(b); }};
  const DlBeacon beacon{.cmd = {.ack = true, .empty = true, .reset = false}};
  const auto frame = beacon.serialize();
  for (std::size_t i = 0; i < frame.size(); ++i) framer.push(frame[i]);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received.front(), beacon);
}

}  // namespace
