// Tests for the reader DSP blocks: FFT, Welch PSD + band SNR, FIR design,
// DDC, frequency-offset estimation, Schmitt trigger / adaptive slicer /
// debouncer / run-length coding, IQ k-means clustering, and the SPSC ring
// buffer with back-pressure.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include "arachnet/dsp/cluster.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fft.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/pipeline.hpp"
#include "arachnet/dsp/psd.hpp"
#include "arachnet/dsp/ring_buffer.hpp"
#include "arachnet/dsp/schmitt.hpp"
#include "arachnet/dsp/slicer.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet::dsp;
using arachnet::sim::Rng;

// ---------------------------------------------------------------------- FFT

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<cplx> data(16, cplx{0, 0});
  data[0] = {1, 0};
  fft(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(std::abs(bin), 1.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 256;
  std::vector<cplx> data(n);
  const int k = 37;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * std::numbers::pi * k * i / double(n);
    data[i] = {std::cos(ph), std::sin(ph)};
  }
  fft(data);
  EXPECT_NEAR(std::abs(data[k]), double(n), 1e-6);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != static_cast<std::size_t>(k)) {
      EXPECT_LT(std::abs(data[i]), 1e-6) << "bin " << i;
    }
  }
}

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng{3};
  std::vector<cplx> data(128);
  for (auto& x : data) x = {rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng{5};
  std::vector<cplx> data(64);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.normal(), rng.normal()};
    time_energy += std::norm(x);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> data(12);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

// ---------------------------------------------------------------------- PSD

TEST(Psd, ToneSnrIsLarge) {
  WelchPsd psd{{.segment_size = 4096, .sample_rate_hz = 500e3}};
  Rng rng{7};
  std::vector<double> signal(50000);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = std::cos(2.0 * std::numbers::pi * 90e3 * i / 500e3) +
                rng.normal(0.0, 0.01);
  }
  const auto spectrum = psd.estimate(signal);
  const double snr = band_snr_db(spectrum, psd.bin_width(), 90e3, 2e3, 40e3);
  EXPECT_GT(snr, 30.0);
}

TEST(Psd, NoiseOnlySnrNearZero) {
  WelchPsd psd{{.segment_size = 2048, .sample_rate_hz = 500e3}};
  Rng rng{9};
  std::vector<double> signal(50000);
  for (auto& s : signal) s = rng.normal(0.0, 1.0);
  const auto spectrum = psd.estimate(signal);
  const double snr = band_snr_db(spectrum, psd.bin_width(), 90e3, 2e3, 40e3);
  EXPECT_NEAR(snr, 0.0, 2.0);
}

TEST(Psd, WhiteNoiseDensityIsFlatAndCorrect) {
  WelchPsd psd{{.segment_size = 1024, .sample_rate_hz = 100e3}};
  Rng rng{11};
  const double sigma = 0.5;
  std::vector<double> signal(200000);
  for (auto& s : signal) s = rng.normal(0.0, sigma);
  const auto spectrum = psd.estimate(signal);
  // Total integrated power should be sigma^2.
  double total = 0.0;
  for (double v : spectrum) total += v * psd.bin_width();
  EXPECT_NEAR(total, sigma * sigma, 0.02 * sigma * sigma);
}

TEST(Psd, RejectsShortSignal) {
  WelchPsd psd{{.segment_size = 4096, .sample_rate_hz = 500e3}};
  EXPECT_THROW(psd.estimate(std::vector<double>(100)), std::invalid_argument);
}

TEST(Psd, RejectsBadParams) {
  EXPECT_THROW((WelchPsd{{.segment_size = 1000, .sample_rate_hz = 500e3}}),
               std::invalid_argument);
  EXPECT_THROW((WelchPsd{{.segment_size = 1024, .sample_rate_hz = -1.0}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------- FIR

TEST(Fir, LowpassPassesDcBlocksHighFrequency) {
  const auto coeffs = design_lowpass(5e3, 500e3, 129);
  FirFilter<double> lpf{coeffs};
  // DC gain ~1.
  double dc_out = 0.0;
  for (int i = 0; i < 400; ++i) dc_out = lpf.push(1.0);
  EXPECT_NEAR(dc_out, 1.0, 1e-3);
  // 100 kHz tone heavily attenuated.
  lpf.reset();
  double peak = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double out =
        lpf.push(std::cos(2.0 * std::numbers::pi * 100e3 * i / 500e3));
    if (i > 300) peak = std::max(peak, std::abs(out));
  }
  EXPECT_LT(peak, 0.01);
}

TEST(Fir, GroupDelayIsSymmetricCentre) {
  const auto coeffs = design_lowpass(5e3, 500e3, 129);
  FirFilter<double> lpf{coeffs};
  EXPECT_DOUBLE_EQ(lpf.group_delay(), 64.0);
  EXPECT_EQ(lpf.taps(), 129u);
}

TEST(Fir, DesignValidation) {
  EXPECT_THROW(design_lowpass(5e3, 500e3, 128), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.0, 500e3, 129), std::invalid_argument);
  EXPECT_THROW(design_lowpass(300e3, 500e3, 129), std::invalid_argument);
}

TEST(Fir, DcBlockerRemovesOffset) {
  DcBlocker blocker{0.99};
  double out = 1.0;
  for (int i = 0; i < 5000; ++i) out = blocker.push(3.0);
  EXPECT_NEAR(out, 0.0, 1e-3);
}

TEST(Fir, ProcessInPlaceMatchesPush) {
  const auto coeffs = design_lowpass(4e3, 31.25e3, 63);
  FirFilter<double> pushed{coeffs};
  FirFilter<double> blocked{coeffs};
  Rng rng{21};
  std::vector<double> buf(300), want(300);
  for (auto& v : buf) v = rng.normal(0.0, 1.0);
  for (std::size_t i = 0; i < buf.size(); ++i) want[i] = pushed.push(buf[i]);
  blocked.process(buf.data(), buf.data(), buf.size());  // in-place
  EXPECT_EQ(buf, want);
}

TEST(Fir, DcBlockerRejectionAndPassbandBounds) {
  // Step rejection: the step response decays as r^n, so after n samples
  // the residual must sit below r^n (with slack) — and must NOT be better
  // than the pole allows, which would mean the filter is clamping.
  DcBlocker blocker{0.999};
  double out = 1.0;
  for (int i = 0; i < 10000; ++i) out = blocker.push(1.0);
  EXPECT_LT(std::abs(out), 1e-3);      // ~0.999^10000 = 4.5e-5, with slack
  EXPECT_GT(std::abs(out), 1e-7);      // still a one-pole decay, not zero
  // Passband: a 1 kHz tone at 31.25 kS/s must come through near unity
  // (the blocker's corner sits well below the modulation band).
  DcBlocker ac{0.999};
  double peak = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x =
        std::sin(2.0 * std::numbers::pi * 1e3 * i / 31.25e3);
    const double y = ac.push(x);
    if (i > 1000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_GT(peak, 0.9);
  EXPECT_LT(peak, 1.1);
}

// ---------------------------------------------------------------------- DDC

TEST(Ddc, CarrierMixesToDc) {
  Ddc ddc{Ddc::Params{}};
  std::vector<double> samples(20000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = std::cos(2.0 * std::numbers::pi * 90e3 * i / 500e3);
  }
  const auto iq = ddc.process(samples);
  ASSERT_GT(iq.size(), 500u);
  // After the filter settles the IQ should be a constant phasor of
  // magnitude ~0.5 (mixer splits power between 0 and 2f).
  for (std::size_t i = 400; i < iq.size(); ++i) {
    EXPECT_NEAR(std::abs(iq[i]), 0.5, 0.01);
  }
}

TEST(Ddc, OffsetToneShowsAsRotation) {
  Ddc ddc{Ddc::Params{}};
  const double offset = 500.0;  // 90.5 kHz input
  std::vector<double> samples(100000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = std::cos(2.0 * std::numbers::pi * (90e3 + offset) * i / 500e3);
  }
  const auto iq = ddc.process(samples);
  const std::vector<std::complex<double>> tail(iq.begin() + 500, iq.end());
  const double estimated = estimate_frequency_offset(tail, ddc.output_rate_hz());
  EXPECT_NEAR(estimated, offset, 5.0);
}

TEST(Ddc, DerotateCancelsOffset) {
  const double rate = 31250.0;
  std::vector<std::complex<double>> iq(2000);
  for (std::size_t i = 0; i < iq.size(); ++i) {
    const double ph = 2.0 * std::numbers::pi * 200.0 * i / rate;
    iq[i] = {std::cos(ph), std::sin(ph)};
  }
  const auto fixed = derotate(iq, rate, 200.0);
  // The simd tier rotates in float32 lanes, so its residual floor is a
  // few float ulps rather than the double paths' 1e-6.
  const double tol =
      default_kernel_policy() == KernelPolicy::kSimd ? 1e-5 : 1e-6;
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    EXPECT_NEAR(fixed[i].real(), 1.0, tol);
    EXPECT_NEAR(fixed[i].imag(), 0.0, tol);
  }
}

TEST(Ddc, FrequencyOffsetEstimateSurvivesLowSnr) {
  // The calibration block runs on leak-dominated (high-SNR) samples, but
  // it must degrade gracefully: at 0 dB SNR the lag-product estimator's
  // error scales as sqrt(var/N), ~15 Hz over 64k samples — the estimate
  // must stay in that statistical envelope, not collapse or alias.
  const double rate = 31250.0;
  const double offset = 200.0;
  Rng rng{33};
  const auto make_iq = [&](double sigma) {
    std::vector<std::complex<double>> iq(65536);
    for (std::size_t i = 0; i < iq.size(); ++i) {
      const double ph = 2.0 * std::numbers::pi * offset * i / rate;
      iq[i] = std::complex<double>{std::cos(ph), std::sin(ph)} +
              std::complex<double>{rng.normal(0.0, sigma),
                                   rng.normal(0.0, sigma)};
    }
    return iq;
  };
  // 0 dB SNR (noise power == tone power): within the ~3-sigma envelope.
  EXPECT_NEAR(estimate_frequency_offset(make_iq(0.707), rate), offset, 45.0);
  // 14 dB SNR: within a few Hz.
  EXPECT_NEAR(estimate_frequency_offset(make_iq(0.1), rate), offset, 5.0);
}

TEST(Ddc, DecimationRatio) {
  Ddc::Params p;
  p.decimation = 16;
  Ddc ddc{p};
  EXPECT_DOUBLE_EQ(ddc.output_rate_hz(), 500e3 / 16.0);
  const auto iq = ddc.process(std::vector<double>(1600, 0.0));
  EXPECT_EQ(iq.size(), 100u);
}

TEST(Ddc, RejectsZeroDecimation) {
  Ddc::Params p;
  p.decimation = 0;
  EXPECT_THROW(Ddc{p}, std::invalid_argument);
}

// ------------------------------------------------------------- Level logic

TEST(Schmitt, HysteresisRejectsChatter) {
  SchmittTrigger trig{-1.0, 1.0};
  EXPECT_FALSE(trig.push(0.9));   // below high: stays low
  EXPECT_TRUE(trig.push(1.1));    // crosses high
  EXPECT_TRUE(trig.push(-0.9));   // inside band: holds
  EXPECT_TRUE(trig.push(0.0));
  EXPECT_FALSE(trig.push(-1.1));  // crosses low
}

TEST(Schmitt, RejectsInvertedThresholds) {
  EXPECT_THROW((SchmittTrigger{1.0, -1.0}), std::invalid_argument);
}

TEST(Slicer, LearnsLevelsAndSlices) {
  AdaptiveSlicer slicer;
  // Feed a clean two-level waveform.
  for (int rep = 0; rep < 20; ++rep) {
    for (int i = 0; i < 50; ++i) slicer.push(1.0);
    for (int i = 0; i < 50; ++i) slicer.push(0.0);
  }
  EXPECT_NEAR(slicer.high(), 1.0, 0.1);
  EXPECT_NEAR(slicer.low(), 0.0, 0.1);
  EXPECT_FALSE(slicer.squelched());
  slicer.push(0.9);
  EXPECT_TRUE(slicer.level());
  slicer.push(0.1);
  EXPECT_FALSE(slicer.level());
}

TEST(Slicer, SquelchHoldsOnNoise) {
  AdaptiveSlicer slicer;
  Rng rng{13};
  bool initial = slicer.level();
  int transitions = 0;
  for (int i = 0; i < 20000; ++i) {
    const bool level = slicer.push(rng.normal(0.0, 0.0003));
    if (level != initial) {
      ++transitions;
      initial = level;
    }
  }
  EXPECT_EQ(transitions, 0);  // noise below floor never slices
}

TEST(Slicer, RecoversFromStrongToWeak) {
  AdaptiveSlicer slicer;
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 20; ++i) slicer.push(0.5);
    for (int i = 0; i < 20; ++i) slicer.push(-0.5);
  }
  // Long silence: levels leak toward zero.
  for (int i = 0; i < 5000; ++i) slicer.push(0.0);
  EXPECT_LT(slicer.separation(), 0.05);
  // A weak signal must still slice after recovery.
  int transitions = 0;
  bool prev = slicer.level();
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 20; ++i) {
      if (slicer.push(0.01) != prev) { ++transitions; prev = slicer.level(); }
    }
    for (int i = 0; i < 20; ++i) {
      if (slicer.push(-0.01) != prev) { ++transitions; prev = slicer.level(); }
    }
  }
  EXPECT_GE(transitions, 15);
}

TEST(Debouncer, SuppressesShortGlitches) {
  Debouncer d{5};
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(d.push(false));
  // 3-sample glitch: shorter than hold, must not pass.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(d.push(true));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(d.push(false));
  // Real transition passes after `hold` samples.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(d.push(true));
  EXPECT_TRUE(d.push(true));
}

TEST(Debouncer, PreservesRunDurations) {
  Debouncer d{4};
  RunLengthEncoder rle;
  std::vector<std::pair<bool, std::size_t>> runs;
  // 30 low, 50 high, 30 low.
  auto feed = [&](bool level, int n) {
    for (int i = 0; i < n; ++i) {
      if (const auto run = rle.push(d.push(level))) {
        runs.push_back({run->level, run->samples});
      }
    }
  };
  feed(false, 30);
  feed(true, 50);
  feed(false, 30);
  feed(true, 10);  // flush
  // Interior runs keep their duration: both edges are delayed by `hold`,
  // so the 50-sample high run and the 30-sample low run survive intact.
  bool saw_high = false, saw_mid_low = false;
  for (const auto& [level, samples] : runs) {
    if (level && samples == 50) saw_high = true;
    if (!level && samples == 30) saw_mid_low = true;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_mid_low);
}

TEST(RunLength, EncodesRuns) {
  RunLengthEncoder rle;
  std::vector<std::pair<bool, std::size_t>> runs;
  const std::vector<int> levels{0, 0, 0, 1, 1, 0, 1, 1, 1, 1};
  for (int v : levels) {
    if (const auto run = rle.push(v != 0)) runs.push_back({run->level, run->samples});
  }
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (std::pair<bool, std::size_t>{false, 3}));
  EXPECT_EQ(runs[1], (std::pair<bool, std::size_t>{true, 2}));
  EXPECT_EQ(runs[2], (std::pair<bool, std::size_t>{false, 1}));
  EXPECT_EQ(rle.open_run(), 4u);
}

// ----------------------------------------------------------------- Cluster

std::vector<std::complex<double>> make_clusters(
    Rng& rng, const std::vector<std::complex<double>>& centres,
    std::size_t per_cluster, double sigma) {
  std::vector<std::complex<double>> points;
  for (const auto& c : centres) {
    for (std::size_t i = 0; i < per_cluster; ++i) {
      points.emplace_back(c.real() + rng.normal(0.0, sigma),
                          c.imag() + rng.normal(0.0, sigma));
    }
  }
  return points;
}

TEST(Cluster, KMeansFindsCentroids) {
  Rng rng{17};
  const auto points = make_clusters(rng, {{0, 0}, {4, 4}}, 200, 0.2);
  const auto result = kmeans(points, 2, rng);
  ASSERT_EQ(result.centroids.size(), 2u);
  // Each true centre must be within 0.1 of some centroid.
  for (const auto& centre : {cplx{0, 0}, cplx{4, 4}}) {
    double best = 1e9;
    for (const auto& c : result.centroids) best = std::min(best, std::abs(c - centre));
    EXPECT_LT(best, 0.1);
  }
}

TEST(Cluster, CountsSingleTagAsTwoClusters) {
  // One backscattering tag: leak+absorb and leak+reflect states.
  Rng rng{19};
  const auto points = make_clusters(rng, {{1, 0}, {1.5, 0.3}}, 300, 0.03);
  EXPECT_EQ(estimate_cluster_count(points, rng), 2u);
  EXPECT_FALSE(detect_collision_iq(points, rng));
}

TEST(Cluster, DetectsCollisionAsMoreClusters) {
  // Two overlapping tags: 4 composite states.
  Rng rng{21};
  const auto points = make_clusters(
      rng, {{1, 0}, {1.5, 0.3}, {1.2, -0.4}, {1.7, -0.1}}, 300, 0.03);
  EXPECT_GT(estimate_cluster_count(points, rng), 2u);
  EXPECT_TRUE(detect_collision_iq(points, rng));
}

TEST(Cluster, SinglePointCloudIsOneCluster) {
  Rng rng{23};
  const auto points = make_clusters(rng, {{2, 2}}, 500, 0.05);
  EXPECT_EQ(estimate_cluster_count(points, rng), 1u);
}

TEST(Cluster, EmptyAndTinyInputs) {
  Rng rng{25};
  EXPECT_EQ(estimate_cluster_count({}, rng), 0u);
  EXPECT_EQ(estimate_cluster_count({{1, 1}, {1, 1}}, rng), 1u);
  EXPECT_THROW(kmeans({}, 2, rng), std::invalid_argument);
}

// ------------------------------------------------------------- Ring buffer

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> buf{8};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(buf.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = buf.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(RingBuffer, TryPushFailsWhenFull) {
  RingBuffer<int> buf{2};
  EXPECT_TRUE(buf.try_push(1));
  EXPECT_TRUE(buf.try_push(2));
  EXPECT_FALSE(buf.try_push(3));
  EXPECT_EQ(buf.size(), 2u);
}

TEST(RingBuffer, BackPressureBlocksProducer) {
  RingBuffer<int> buf{2};
  ASSERT_TRUE(buf.push(1));
  ASSERT_TRUE(buf.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    buf.push(3);  // blocks until a pop frees space
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(buf.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(RingBuffer, CloseDrainsThenStops) {
  RingBuffer<int> buf{4};
  buf.push(1);
  buf.push(2);
  buf.close();
  EXPECT_FALSE(buf.push(3));  // closed: push fails
  EXPECT_EQ(buf.pop().value(), 1);
  EXPECT_EQ(buf.pop().value(), 2);
  EXPECT_FALSE(buf.pop().has_value());  // drained
}

TEST(RingBuffer, CloseWakesBlockedConsumer) {
  RingBuffer<int> buf{4};
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    const auto v = buf.pop();  // blocks until close
    EXPECT_FALSE(v.has_value());
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  buf.close();
  consumer.join();
  EXPECT_TRUE(done.load());
}

TEST(Pipeline, StagesStreamAndShutDown) {
  auto in = std::make_shared<RingBuffer<int>>(16);
  auto mid = std::make_shared<RingBuffer<int>>(16);
  // Output must hold the full result set: it is only drained after join.
  auto out = std::make_shared<RingBuffer<int>>(256);
  PipelineStage<int, int> doubler{
      in, mid, [](int x, const std::function<void(int)>& emit) { emit(2 * x); }};
  PipelineStage<int, int> inc{
      mid, out, [](int x, const std::function<void(int)>& emit) { emit(x + 1); }};
  doubler.start();
  inc.start();
  for (int i = 0; i < 100; ++i) in->push(i);
  in->close();
  doubler.join();
  inc.join();
  for (int i = 0; i < 100; ++i) {
    const auto v = out->pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 2 * i + 1);
  }
  EXPECT_FALSE(out->pop().has_value());
}

TEST(Pipeline, StageCanEmitZeroOrMany) {
  auto in = std::make_shared<RingBuffer<int>>(16);
  auto out = std::make_shared<RingBuffer<int>>(64);
  PipelineStage<int, int> expander{
      in, out, [](int x, const std::function<void(int)>& emit) {
        for (int i = 0; i < x; ++i) emit(x);  // emits x copies (0 for x=0)
      }};
  expander.start();
  in->push(0);
  in->push(3);
  in->close();
  expander.join();
  int count = 0;
  while (out->pop()) ++count;
  EXPECT_EQ(count, 3);
}

}  // namespace
