// Telemetry subsystem tests: metrics registry, scoped tracing, structured
// logging, the JSONL exporter, and — the load-bearing guarantee — that
// turning instrumentation on does not change what the receive chains
// decode (bit-exact parity).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/reader/realtime_reader.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/telemetry.hpp"

using namespace arachnet;
using namespace arachnet::telemetry;

// ------------------------------------------------------------ instruments

TEST(Metrics, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, HistogramBinsUnderOverflowAndExtremes) {
  LatencyHistogram h{0.0, 10.0, 10};
  h.record(0.0);    // lo inclusive -> bin 0
  h.record(9.99);   // top bin
  h.record(-5.0);   // underflow
  h.record(10.0);   // hi exclusive -> overflow
  h.record(123.0);  // overflow
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 123.0);
  EXPECT_NEAR(h.sum(), 0.0 + 9.99 - 5.0 + 10.0 + 123.0, 1e-12);
}

TEST(Metrics, RegistryReturnsStableInstrumentsByName) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  LatencyHistogram& h1 = reg.histogram("x.lat", 0.0, 100.0, 10);
  // Later lookups ignore the range arguments.
  LatencyHistogram& h2 = reg.histogram("x.lat", 5.0, 7.0, 3);
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.hi(), 100.0);
}

TEST(Metrics, SnapshotCapturesAllInstruments) {
  MetricsRegistry reg;
  reg.counter("c1").add(7);
  reg.gauge("g1").set(1.5);
  auto& h = reg.histogram("h1", 0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.record(0.05 + 0.099 * i);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c1");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 100u);
  // Roughly uniform over [0, 10): the median estimate sits near 5.
  EXPECT_NEAR(snap.histograms[0].percentile(0.5), 5.0, 1.0);
  EXPECT_LE(snap.histograms[0].percentile(0.0),
            snap.histograms[0].percentile(1.0));
}

TEST(Metrics, ConcurrentCounterAddsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  LatencyHistogram& h = reg.histogram("lat", 0.0, 1000.0, 16);
  constexpr int kThreads = 4, kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<double>((i + t) % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t binned = h.underflow() + h.overflow();
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned, h.count());
}

// ----------------------------------------------------------------- tracing

TEST(Trace, SpansRecordOnlyWhileEnabled) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  { TraceSpan off{"not.recorded"}; }
  EXPECT_EQ(rec.event_count(), 0u);

  rec.enable();
  {
    ARACHNET_TRACE_SPAN("outer");
    ARACHNET_TRACE_SPAN("inner");
  }
  rec.disable();
  { TraceSpan late{"also.not.recorded"}; }
#ifdef ARACHNET_TELEMETRY_DISABLED
  EXPECT_EQ(rec.event_count(), 0u);
#else
  EXPECT_EQ(rec.event_count(), 2u);
#endif

  std::ostringstream out;
  rec.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
#ifndef ARACHNET_TELEMETRY_DISABLED
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
#endif
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, RingWrapCountsDropped) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.enable(/*events_per_thread=*/8);
  // A fresh thread gets a ring sized by the enable() above.
  std::thread t{[] {
    for (int i = 0; i < 20; ++i) TraceSpan span{"wrap"};
  }};
  t.join();
  rec.disable();
#ifndef ARACHNET_TELEMETRY_DISABLED
  EXPECT_LE(rec.event_count(), 8u + 8u);  // this thread's ring may persist
  EXPECT_GE(rec.dropped(), 12u);
#endif
  rec.clear();
}

TEST(Trace, ExportCarriesWallClockAnchor) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.enable();
  { ARACHNET_TRACE_SPAN("anchored"); }
  rec.disable();

  // enable() captured both clocks back to back; the steady epoch is ts 0.
  EXPECT_NE(rec.wall_anchor_ns(), 0);
  EXPECT_NE(rec.epoch_ns(), 0u);

  std::ostringstream out;
  rec.write_chrome_trace(out);
  const std::string json = out.str();
  // One anchor record per file, in otherData and as an instant event.
  EXPECT_NE(json.find("\"clock_sync\""), std::string::npos);
  EXPECT_NE(json.find("\"clock_anchor\""), std::string::npos);
  EXPECT_NE(json.find("\"steady_epoch_ns\":" +
                      std::to_string(rec.epoch_ns())),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\":" + std::to_string(rec.wall_anchor_ns())),
            std::string::npos);
  rec.clear();
}

// -------------------------------------------------------------------- json

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  JsonWriter w;
  w.begin_object();
  w.key("nan");
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.key("inf");
  w.value(std::numeric_limits<double>::infinity());
  w.key("ninf");
  w.value(-std::numeric_limits<double>::infinity());
  w.key("ok");
  w.value(1.5);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"nan\":null,\"inf\":null,\"ninf\":null,\"ok\":1.5}");
}

// ----------------------------------------------------------------- logging

namespace {

struct CapturedLog {
  std::vector<std::string> lines;
};

void capture_sink(const LogRecord& r, void* user) {
  auto* cap = static_cast<CapturedLog*>(user);
  std::string line{to_string(r.level)};
  line += ' ';
  line.append(r.component);
  line += ": ";
  line.append(r.message);
  for (std::size_t i = 0; i < r.field_count; ++i) {
    const LogField& f = r.fields[i];
    line += ' ';
    line.append(f.key);
    line += '=';
    switch (f.kind) {
      case LogField::Kind::kInt: line += std::to_string(f.i); break;
      case LogField::Kind::kUint: line += std::to_string(f.u); break;
      case LogField::Kind::kDouble: line += std::to_string(f.d); break;
      case LogField::Kind::kBool: line += f.b ? "true" : "false"; break;
      case LogField::Kind::kString: line.append(f.s); break;
    }
  }
  cap->lines.push_back(std::move(line));
}

}  // namespace

TEST(Log, SinkReceivesStructuredFieldsAndLevelGateHolds) {
  CapturedLog cap;
  set_log_sink(&capture_sink, &cap);
  set_log_level(LogLevel::kInfo);

  ARACHNET_LOG_DEBUG("test", "below the level");  // suppressed
  ARACHNET_LOG_INFO("test", "hello", {"n", 3}, {"ok", true});
  ARACHNET_LOG_WARN("test", "watch out", {"ratio", 0.5});

  set_log_sink(&stderr_log_sink);
  set_log_level(LogLevel::kWarn);
#ifdef ARACHNET_TELEMETRY_DISABLED
  EXPECT_TRUE(cap.lines.empty());
#else
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(cap.lines[0], "INFO test: hello n=3 ok=true");
  EXPECT_EQ(cap.lines[1], "WARN test: watch out ratio=0.500000");
#endif
}

// ------------------------------------------------------------ JSONL export

TEST(Export, EnvelopeAndEscaping) {
  JsonlExporter ex{std::string{JsonlExporter::kBenchSchema}, "unit_test"};
  ex.add_metric("plain", 1.5, "ms");
  ex.add_counter("count", 7);
  ex.add_gauge("g\"q", 2.0);  // quote must be escaped
  ex.add_percentiles("p", {{0.5, 10.0}, {0.99, 20.0}}, "us");
  EXPECT_EQ(ex.line_count(), 4u);

  std::ostringstream out;
  ex.write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"arachnet.bench.v1\""), std::string::npos);
  EXPECT_NE(text.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"metric\""), std::string::npos);
  EXPECT_NE(text.find("\"unit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("g\\\"q"), std::string::npos);
  EXPECT_NE(text.find("\"p50\":10"), std::string::npos);
  // One JSON object per line, no trailing garbage.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(ex.line_count()));
}

TEST(Export, SnapshotRoundTrip) {
  MetricsRegistry reg;
  reg.counter("a").add(2);
  reg.gauge("b").set(3.5);
  reg.histogram("c", 0.0, 4.0, 4).record(1.0);

  JsonlExporter ex{"arachnet.metrics.v1", "test"};
  ex.add_snapshot(reg.snapshot());
  EXPECT_EQ(ex.line_count(), 3u);
  std::ostringstream out;
  ex.write(out);
  EXPECT_NE(out.str().find("\"kind\":\"histogram\""), std::string::npos);
}

// ----------------------------------------------- instrumentation parity

namespace {

std::vector<double> fdma_capture(int round, sim::Rng& rng,
                                 acoustic::UplinkWaveformSynth& synth) {
  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 4; ++k) {
    const phy::UlPacket pkt{
        .tid = static_cast<std::uint8_t>(k + 1),
        .payload = static_cast<std::uint16_t>(0x400 + 8 * round + k)};
    phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * k;
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  return synth.synthesize(srcs, 0.3, rng);
}

reader::FdmaRxChain::Params four_channel_params(
    telemetry::MetricsRegistry* metrics) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = 2;
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  fp.metrics = metrics;
  return fp;
}

}  // namespace

// The telemetry guarantee: a fully instrumented bank (metrics registry,
// tracing enabled, debug logging) decodes bit-identically to a bare one.
TEST(TelemetryParity, InstrumentedFdmaBankMatchesBareBitExactly) {
  auto& rec = TraceRecorder::instance();
  rec.clear();
  rec.enable();
  set_log_level(LogLevel::kError);  // keep test output quiet but live

  MetricsRegistry registry;
  reader::FdmaRxChain bare{four_channel_params(nullptr)};
  reader::FdmaRxChain instrumented{four_channel_params(&registry)};

  sim::Rng rng_a{42}, rng_b{42};
  acoustic::UplinkWaveformSynth synth_a{acoustic::UplinkWaveformSynth::Params{}};
  acoustic::UplinkWaveformSynth synth_b{acoustic::UplinkWaveformSynth::Params{}};

  std::size_t total = 0;
  for (int round = 0; round < 2; ++round) {
    const auto wave_a = fdma_capture(round, rng_a, synth_a);
    const auto wave_b = fdma_capture(round, rng_b, synth_b);
    ASSERT_EQ(wave_a, wave_b);
    constexpr std::size_t kBlock = 12500;
    for (std::size_t off = 0; off < wave_a.size(); off += kBlock) {
      const std::size_t len = std::min(kBlock, wave_a.size() - off);
      const std::vector<double> block(wave_a.begin() + off,
                                      wave_a.begin() + off + len);
      bare.process(block);
      instrumented.process(block);
    }
  }
  rec.disable();
  set_log_level(LogLevel::kInfo);

  for (std::size_t c = 0; c < bare.channel_count(); ++c) {
    ASSERT_EQ(bare.packets(c), instrumented.packets(c)) << "channel " << c;
    total += bare.packets(c).size();
    // The registry counters must agree with the bank's own statistics.
    const auto st = instrumented.channel_stats(c);
    char name[48];
    std::snprintf(name, sizeof(name), "fdma.ch%zu.frames", c);
    EXPECT_EQ(registry.counter(name).value(), st.frames_ok);
    std::snprintf(name, sizeof(name), "fdma.ch%zu.bits", c);
    EXPECT_EQ(registry.counter(name).value(), st.bits);
  }
  EXPECT_GE(total, 6u) << "capture failed to decode; parity vacuous";
  // Channelizer instrumentation: the default (auto) bank engages the
  // shared channelizer on this uniform four-channel grid, and says so.
  EXPECT_EQ(instrumented.active_bank(),
            reader::FdmaRxChain::BankPolicy::kChannelizer);
  EXPECT_DOUBLE_EQ(registry.gauge("fdma.bank_policy").value(), 1.0);
  const auto chzr_frames = registry.counter("fdma.chzr.frames").value();
  EXPECT_GT(chzr_frames, 0u);
  // In lane mode a channel consumes exactly one lane sample per frame.
  EXPECT_EQ(chzr_frames, instrumented.channel_stats(0).iq_samples);
  registry.counter("fdma.chzr.fft_us");  // bound; value is hw-dependent
#ifndef ARACHNET_TELEMETRY_DISABLED
  EXPECT_GT(rec.event_count(), 0u);  // spans actually fired
#endif
  rec.clear();
}

TEST(TelemetryParity, RealtimeReaderPublishesQueueAndPacketMetrics) {
  MetricsRegistry registry;
  reader::RealtimeReader::Params params;
  params.metrics = &registry;
  reader::RealtimeReader rt{params};
  rt.start();

  sim::Rng rng{7};
  acoustic::UplinkWaveformSynth synth{acoustic::UplinkWaveformSynth::Params{}};
  const phy::UlPacket pkt{.tid = 9, .payload = 0x5C3};
  acoustic::BackscatterSource src;
  src.chips = phy::Fm0Encoder::encode_frame(pkt.serialize());
  src.chip_rate = 375.0;
  src.start_s = 0.03;
  src.amplitude = 0.2;
  src.phase_rad = 1.2;
  const auto wave = synth.synthesize({src}, 0.35, rng);

  constexpr std::size_t kBlock = 12500;
  std::size_t blocks = 0;
  for (std::size_t off = 0; off < wave.size(); off += kBlock, ++blocks) {
    const std::size_t len = std::min(kBlock, wave.size() - off);
    ASSERT_TRUE(rt.submit({wave.begin() + off, wave.begin() + off + len}));
  }
  rt.stop();

  std::size_t fetched = 0;
  bool saw_pkt = false;
  while (auto p = rt.poll_packet()) {
    saw_pkt |= (p->packet == pkt);
    ++fetched;
  }
  EXPECT_TRUE(saw_pkt);

  const auto stats = rt.stats();
  EXPECT_EQ(stats.packets_emitted, fetched);
  EXPECT_GE(stats.backpressure_stall_s, 0.0);
  EXPECT_EQ(registry.counter("reader.packets_emitted").value(), fetched);
  EXPECT_EQ(registry.counter("reader.blocks").value(), blocks);
  const auto snap = registry.snapshot();
  const auto hist = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& h) { return h.name == "reader.block_ms"; });
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_EQ(hist->count, blocks);
}

// ------------------------------------------------------------ scoping

TEST(Metrics, ScopedNamePrefixesOnlyWhenScopeSet) {
  EXPECT_EQ(scoped_name("", "reader.blocks"), "reader.blocks");
  EXPECT_EQ(scoped_name("r0.", "reader.blocks"), "r0.reader.blocks");
  EXPECT_EQ(scoped_name("fleet.", "bus.depth"), "fleet.bus.depth");
}

TEST(Metrics, ScopedInstancesShareRegistryWithoutColliding) {
  // Two instruments that differ only by scope are distinct rows; the
  // unscoped name keeps its historical identity.
  MetricsRegistry reg;
  reg.counter(scoped_name("r0.", "reader.blocks")).add(3);
  reg.counter(scoped_name("r1.", "reader.blocks")).add(5);
  reg.counter("reader.blocks").add(7);
  EXPECT_EQ(reg.counter("r0.reader.blocks").value(), 3u);
  EXPECT_EQ(reg.counter("r1.reader.blocks").value(), 5u);
  EXPECT_EQ(reg.counter("reader.blocks").value(), 7u);
}
