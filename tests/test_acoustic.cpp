// Tests for the PZT transducer model, the BiW structural graph, the link
// model, the ONVO-L60 deployment calibration anchors, and the uplink
// waveform synthesizer.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "arachnet/acoustic/biw_graph.hpp"
#include "arachnet/acoustic/deployment.hpp"
#include "arachnet/acoustic/link_model.hpp"
#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/energy/harvester.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/pzt/transducer.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/sim/units.hpp"

namespace {

using namespace arachnet;
using namespace arachnet::acoustic;
using arachnet::pzt::PztState;
using arachnet::pzt::Transducer;

// --------------------------------------------------------------- Transducer

TEST(Transducer, UnityResponseAtResonance) {
  Transducer t;
  EXPECT_NEAR(t.frequency_response(90e3), 1.0, 1e-12);
}

TEST(Transducer, ResponseFallsOffResonance) {
  Transducer t;
  EXPECT_LT(t.frequency_response(45e3), 0.1);
  EXPECT_LT(t.frequency_response(180e3), 0.1);
  EXPECT_GT(t.frequency_response(89e3), 0.7);
}

TEST(Transducer, LowFrequencyVehicleVibrationIsRejected) {
  // Paper Sec. 2.2 discussion: road/engine vibration sits below 0.1 kHz and
  // is separated from the 90 kHz carrier by the resonance.
  Transducer t;
  EXPECT_LT(t.frequency_response(100.0), 1e-4);
}

TEST(Transducer, BandwidthMatchesQ) {
  Transducer t;
  EXPECT_NEAR(t.bandwidth_hz(), 90e3 / 18.0, 1e-9);
  // Half-power points roughly at f0 +/- BW/2.
  const double half_bw = t.bandwidth_hz() / 2.0;
  EXPECT_NEAR(t.frequency_response(90e3 + half_bw), 1.0 / std::sqrt(2.0),
              0.03);
}

TEST(Transducer, ReflectionStatesDiffer) {
  Transducer t;
  const double reflect = t.reflection_coefficient(PztState::kReflective);
  const double absorb = t.reflection_coefficient(PztState::kAbsorptive);
  EXPECT_GT(reflect, absorb);  // short circuit reflects more
  EXPECT_NEAR(t.modulation_depth(), reflect - absorb, 1e-12);
  EXPECT_GT(t.modulation_depth(), 0.3);  // usable OOK depth
}

TEST(Transducer, StateIsSwitchable) {
  Transducer t;
  t.set_state(PztState::kReflective);
  EXPECT_EQ(t.state(), PztState::kReflective);
  t.set_state(PztState::kAbsorptive);
  EXPECT_EQ(t.state(), PztState::kAbsorptive);
}

TEST(Transducer, RingTimeConstant) {
  Transducer t;
  EXPECT_NEAR(t.ring_time_constant(), 18.0 / (std::numbers::pi * 90e3), 1e-12);
  EXPECT_LT(t.ring_time_constant(), 100e-6);
}

TEST(Transducer, TransductionScalesLinearly) {
  Transducer t;
  EXPECT_NEAR(t.open_circuit_voltage(2.0, 90e3),
              2.0 * t.params().rx_sensitivity, 1e-12);
  EXPECT_NEAR(t.emitted_amplitude(36.0, 90e3), 36.0 * t.params().tx_gain,
              1e-12);
}

TEST(Transducer, InvalidParamsThrow) {
  Transducer::Params p;
  p.resonant_hz = -1.0;
  EXPECT_THROW(Transducer{p}, std::invalid_argument);
}

// ----------------------------------------------------------------- BiwGraph

BiwGraph line_graph() {
  BiwGraph g;
  const auto a = g.add_node("a", {0, 0, 0});
  const auto b = g.add_node("b", {1, 0, 0});
  const auto c = g.add_node("c", {2, 0, 0});
  g.add_edge(a, b, EdgeKind::kContinuousPanel);
  g.add_edge(b, c, EdgeKind::kSeamWeld);
  return g;
}

TEST(BiwGraph, PathAccumulatesLossAndDistance) {
  const auto g = line_graph();
  const auto budget = g.path(0, 2);
  ASSERT_TRUE(budget.reachable());
  const auto panel = default_acoustics(EdgeKind::kContinuousPanel);
  const auto seam = default_acoustics(EdgeKind::kSeamWeld);
  EXPECT_NEAR(budget.loss_db,
              panel.propagation_loss_db_per_m + seam.propagation_loss_db_per_m +
                  seam.junction_loss_db,
              1e-9);
  EXPECT_NEAR(budget.distance_m, 2.0, 1e-9);
  EXPECT_NEAR(budget.delay_s, 2.0 / sim::kSteelGroupVelocityMps, 1e-12);
  EXPECT_EQ(budget.nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(BiwGraph, PicksMinimumLossRoute) {
  BiwGraph g;
  const auto a = g.add_node("a", {0, 0, 0});
  const auto b = g.add_node("b", {1, 0, 0});
  const auto c = g.add_node("c", {0.5, 1, 0});
  // Direct but lossy (bolted), vs. a longer continuous detour.
  g.add_edge(a, b, EdgeKind::kBoltedJoint);
  g.add_edge(a, c, EdgeKind::kContinuousPanel);
  g.add_edge(c, b, EdgeKind::kContinuousPanel);
  const auto budget = g.path(a, b);
  EXPECT_EQ(budget.nodes.size(), 3u);  // took the detour
}

TEST(BiwGraph, UnreachableNodes) {
  BiwGraph g;
  g.add_node("a", {0, 0, 0});
  g.add_node("b", {1, 0, 0});
  const auto budget = g.path(0, 1);
  EXPECT_FALSE(budget.reachable());
  EXPECT_TRUE(std::isinf(g.path_loss_db(0, 1)));
}

TEST(BiwGraph, SelfPathIsFree) {
  const auto g = line_graph();
  const auto budget = g.path(1, 1);
  EXPECT_DOUBLE_EQ(budget.loss_db, 0.0);
  EXPECT_DOUBLE_EQ(budget.distance_m, 0.0);
}

TEST(BiwGraph, RejectsBadEdges) {
  BiwGraph g;
  const auto a = g.add_node("a", {0, 0, 0});
  const auto b = g.add_node("b", {1, 0, 0});
  EXPECT_THROW(g.add_edge(a, a, EdgeKind::kSeamWeld), std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 7, EdgeKind::kSeamWeld), std::out_of_range);
  // Metal path can't be shorter than the straight line.
  EXPECT_THROW(g.add_edge(a, b, EdgeKind::kSeamWeld, 0.5),
               std::invalid_argument);
}

TEST(BiwGraph, FindByName) {
  const auto g = line_graph();
  ASSERT_TRUE(g.find("b").has_value());
  EXPECT_EQ(*g.find("b"), 1u);
  EXPECT_FALSE(g.find("zz").has_value());
}

TEST(BiwGraph, JunctionLossOrdering) {
  EXPECT_LT(default_acoustics(EdgeKind::kContinuousPanel).junction_loss_db,
            default_acoustics(EdgeKind::kSeamWeld).junction_loss_db);
  EXPECT_LT(default_acoustics(EdgeKind::kSeamWeld).junction_loss_db,
            default_acoustics(EdgeKind::kPerpendicularJunction).junction_loss_db);
  EXPECT_LT(
      default_acoustics(EdgeKind::kPerpendicularJunction).junction_loss_db,
      default_acoustics(EdgeKind::kBoltedJoint).junction_loss_db);
}

// ------------------------------------------------------------- ChannelModel

TEST(ChannelModel, LinkIncludesMountLossTwice) {
  const auto g = line_graph();
  ChannelModel::Params params;
  const ChannelModel model{&g, params};
  const auto link = model.link(0, 2);
  const auto path = g.path(0, 2);
  EXPECT_NEAR(link.loss_db, path.loss_db + 2.0 * params.mount_loss_db, 1e-9);
  EXPECT_NEAR(link.gain, std::pow(10.0, -link.loss_db / 20.0), 1e-12);
}

TEST(ChannelModel, RoundTripIsGainSquared) {
  const auto g = line_graph();
  const ChannelModel model{&g, {}};
  const auto link = model.link(0, 2);
  EXPECT_NEAR(model.roundtrip_gain(0, 2), link.gain * link.gain, 1e-15);
}

TEST(ChannelModel, NoiseScalesWithSqrtBandwidth) {
  const auto g = line_graph();
  const ChannelModel model{&g, {}};
  EXPECT_NEAR(model.noise_rms(400.0), 2.0 * model.noise_rms(100.0), 1e-12);
}

TEST(ChannelModel, NullGraphThrows) {
  EXPECT_THROW((ChannelModel{nullptr, {}}), std::invalid_argument);
}

// --------------------------------------------------------------- Deployment

class DeploymentTest : public ::testing::Test {
 protected:
  Deployment d = Deployment::onvo_l60();

  double amplified_16x(int tid) const {
    energy::Harvester h{energy::Harvester::Params{}};
    h.set_pzt_peak_voltage(d.tag_pzt_peak_voltage(tid));
    return h.amplified_voltage();
  }

  double charge_time(int tid) const {
    energy::Harvester h{energy::Harvester::Params{}};
    h.set_pzt_peak_voltage(d.tag_pzt_peak_voltage(tid));
    return h.charge_time(0.0, h.cutoff().high_threshold());
  }
};

TEST_F(DeploymentTest, TwelveTagsInThreeAreas) {
  ASSERT_EQ(d.tags().size(), 12u);
  int front = 0, second = 0, cargo = 0;
  for (const auto& t : d.tags()) {
    if (t.area == BiwArea::kFrontRow) ++front;
    if (t.area == BiwArea::kSecondRow) ++second;
    if (t.area == BiwArea::kCargoArea) ++cargo;
  }
  EXPECT_EQ(front, 3);   // tags 1-3
  EXPECT_EQ(second, 5);  // tags 4-8
  EXPECT_EQ(cargo, 4);   // tags 9-12
}

TEST_F(DeploymentTest, AllTagsReachable) {
  for (const auto& t : d.tags()) {
    EXPECT_GT(d.reader_link(t.tid).gain, 0.0) << "tag " << t.tid;
  }
}

TEST_F(DeploymentTest, AnchorTag8NearestAndStrongest) {
  for (const auto& t : d.tags()) {
    if (t.tid == 8) continue;
    EXPECT_GE(d.reader_link(t.tid).loss_db, d.reader_link(8).loss_db)
        << "tag " << t.tid;
  }
}

TEST_F(DeploymentTest, PaperVoltageAnchors) {
  // Paper Sec. 6.2: Tag 4 reaches 4.74 V and Tag 11 2.70 V at 16x; the
  // strongest tags reach ~20+ V.
  EXPECT_NEAR(amplified_16x(4), 4.74, 0.6);
  EXPECT_NEAR(amplified_16x(11), 2.70, 0.35);
  EXPECT_GT(amplified_16x(8), 15.0);
  EXPECT_LT(amplified_16x(8), 26.0);
}

TEST_F(DeploymentTest, AllTagsExceedActivationThresholdAt8Stages) {
  for (const auto& t : d.tags()) {
    EXPECT_GE(amplified_16x(t.tid), 2.3) << "tag " << t.tid;
  }
}

TEST_F(DeploymentTest, ChargingTimesSpanPaperRange) {
  // Paper: 4.5 s to 56.2 s across the deployment.
  double t_min = 1e9, t_max = 0.0;
  for (const auto& t : d.tags()) {
    const double ct = charge_time(t.tid);
    ASSERT_GT(ct, 0.0) << "tag " << t.tid;
    t_min = std::min(t_min, ct);
    t_max = std::max(t_max, ct);
  }
  EXPECT_NEAR(t_min, 4.5, 1.0);
  EXPECT_NEAR(t_max, 56.2, 8.0);
}

TEST_F(DeploymentTest, NetChargingPowerAnchors) {
  // 587.8 uW (fastest) and 47.1 uW (slowest) in the paper.
  energy::Harvester h8{energy::Harvester::Params{}};
  h8.set_pzt_peak_voltage(d.tag_pzt_peak_voltage(8));
  energy::Harvester h11{energy::Harvester::Params{}};
  h11.set_pzt_peak_voltage(d.tag_pzt_peak_voltage(11));
  const double hth = h8.cutoff().high_threshold();
  EXPECT_NEAR(h8.net_charging_power(hth) * 1e6, 587.8, 100.0);
  EXPECT_NEAR(h11.net_charging_power(hth) * 1e6, 47.1, 10.0);
}

TEST_F(DeploymentTest, CargoTagsWeakerThanSecondRowOnAverage) {
  double second = 0.0, cargo = 0.0;
  for (const auto& t : d.tags()) {
    if (t.area == BiwArea::kSecondRow) second += d.reader_link(t.tid).loss_db;
    if (t.area == BiwArea::kCargoArea) cargo += d.reader_link(t.tid).loss_db;
  }
  EXPECT_GT(cargo / 4.0, second / 5.0);
}

TEST_F(DeploymentTest, UnknownTagThrows) {
  EXPECT_THROW(d.tag(13), std::out_of_range);
  EXPECT_THROW(d.tag(0), std::out_of_range);
}

TEST_F(DeploymentTest, BackscatterPhaseDeterministic) {
  EXPECT_DOUBLE_EQ(d.backscatter_phase(5), d.backscatter_phase(5));
  // Different routes give different phases for at least some pairs.
  EXPECT_NE(d.backscatter_phase(8), d.backscatter_phase(11));
}

// --------------------------------------------------------- WaveformChannel

TEST(WaveformSynth, CarrierOnlySpectrumPeaksAt90kHz) {
  UplinkWaveformSynth::Params p;
  p.noise_sigma = 0.0;
  UplinkWaveformSynth synth{p};
  sim::Rng rng{1};
  const auto samples = synth.synthesize({}, 0.01, rng);
  ASSERT_EQ(samples.size(), 5000u);
  // Goertzel power at the carrier vs an off-carrier probe.
  const auto goertzel = [&](double hz) {
    double re = 0.0, im = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double ph = 2.0 * std::numbers::pi * hz * i / 500e3;
      re += samples[i] * std::cos(ph);
      im += samples[i] * std::sin(ph);
    }
    return re * re + im * im;
  };
  EXPECT_GT(goertzel(90e3), 100.0 * goertzel(70e3));
}

TEST(WaveformSynth, BackscatterModulationChangesEnvelope) {
  UplinkWaveformSynth::Params p;
  p.noise_sigma = 0.0;
  p.carrier_leak_amplitude = 0.0;  // isolate the tag's reflection
  UplinkWaveformSynth synth{p};
  BackscatterSource src;
  src.chips = phy::BitVector{1, 1, 1, 1, 0, 0, 0, 0};
  src.chip_rate = 400.0;  // 2.5 ms per chip -> 20 ms total
  src.amplitude = 1.0;
  sim::Rng rng{2};
  const auto samples = synth.synthesize({src}, 0.02, rng);
  // RMS over the reflective half vs the absorptive half.
  double rms_hi = 0.0, rms_lo = 0.0;
  const std::size_t half = samples.size() / 2;
  for (std::size_t i = 0; i < half; ++i) rms_hi += samples[i] * samples[i];
  for (std::size_t i = half; i < samples.size(); ++i) {
    rms_lo += samples[i] * samples[i];
  }
  EXPECT_GT(std::sqrt(rms_hi / half), 1.8 * std::sqrt(rms_lo / half));
}

TEST(WaveformSynth, RingLimitsTransitionSpeed) {
  UplinkWaveformSynth::Params p;
  p.noise_sigma = 0.0;
  p.carrier_leak_amplitude = 0.0;
  p.ring_tau_s = 2e-3;  // exaggerated ring
  UplinkWaveformSynth synth{p};
  BackscatterSource src;
  src.chips = phy::BitVector{1};
  src.chip_rate = 100.0;
  src.amplitude = 1.0;
  src.phase_rad = 0.0;
  sim::Rng rng{3};
  const auto samples = synth.synthesize({src}, 0.01, rng);
  // Envelope right after the transition must still be far from its final
  // value because of the ring time constant.
  double early_peak = 0.0, late_peak = 0.0;
  for (std::size_t i = 0; i < 100; ++i) {
    early_peak = std::max(early_peak, std::abs(samples[i]));
  }
  for (std::size_t i = samples.size() - 500; i < samples.size(); ++i) {
    late_peak = std::max(late_peak, std::abs(samples[i]));
  }
  EXPECT_LT(early_peak, 0.6 * late_peak);
}

TEST(WaveformSynth, NoiseIsReproducibleWithSeed) {
  UplinkWaveformSynth synth_a{UplinkWaveformSynth::Params{}};
  UplinkWaveformSynth synth_b{UplinkWaveformSynth::Params{}};
  sim::Rng rng1{42}, rng2{42};
  const auto a = synth_a.synthesize({}, 0.001, rng1);
  const auto b = synth_b.synthesize({}, 0.001, rng2);
  EXPECT_EQ(a, b);
}

TEST(WaveformSynth, ConsecutiveCallsArePhaseContinuous) {
  // The reader transmits continuously: rendering two windows must equal
  // rendering one window of the combined duration.
  UplinkWaveformSynth::Params p;
  p.noise_sigma = 0.0;
  UplinkWaveformSynth split{p}, whole{p};
  sim::Rng rng{1};
  auto first = split.synthesize({}, 0.001, rng);
  const auto second = split.synthesize({}, 0.001, rng);
  first.insert(first.end(), second.begin(), second.end());
  const auto reference = whole.synthesize({}, 0.002, rng);
  ASSERT_EQ(first.size(), reference.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_NEAR(first[i], reference[i], 1e-9) << "sample " << i;
  }
  EXPECT_NEAR(split.now(), 0.002, 1e-12);
  split.reset();
  EXPECT_DOUBLE_EQ(split.now(), 0.0);
}

}  // namespace
