// Tests for the MCU simulator: VLO clock drift/quantization, the
// interrupt-driven MSP430 shell (mode accounting, timers, edges), and the
// tag-side PIE downlink demodulator whose timer imprecision produces the
// paper's high-rate loss surge (Fig. 13a).
#include <gtest/gtest.h>

#include <cmath>

#include "arachnet/mcu/dl_demodulator.hpp"
#include "arachnet/mcu/envelope_frontend.hpp"
#include "arachnet/reader/dl_tx.hpp"
#include "arachnet/mcu/msp430.hpp"
#include "arachnet/mcu/vlo_clock.hpp"
#include "arachnet/sim/event_queue.hpp"
#include "arachnet/sim/rng.hpp"

namespace {

using namespace arachnet;
using mcu::DlDemodulator;
using mcu::Msp430;
using mcu::VloClock;
using sim::EventQueue;
using sim::Rng;

// ---------------------------------------------------------------- VloClock

TEST(VloClock, NominalFrequencyAtReferenceSupply) {
  VloClock clock;
  EXPECT_DOUBLE_EQ(clock.frequency(2.0), 12e3);
  EXPECT_DOUBLE_EQ(clock.nominal_tick(), 1.0 / 12e3);
}

TEST(VloClock, FrequencyShiftsWithSupply) {
  VloClock clock;
  EXPECT_GT(clock.frequency(2.3), clock.frequency(2.0));
  EXPECT_LT(clock.frequency(1.95), clock.frequency(2.0));
  // ~3.5% per volt.
  EXPECT_NEAR(clock.frequency(3.0) / clock.frequency(2.0), 1.035, 1e-9);
}

TEST(VloClock, MeasurementQuantizesToTicks) {
  VloClock::Params p;
  p.jitter_frac = 0.0;
  VloClock clock{p};
  Rng rng{1};
  // 1 ms at 12 kHz is 12 ticks; phase noise makes it 12 or 13.
  for (int i = 0; i < 100; ++i) {
    const int ticks = clock.measure_ticks(1e-3, 2.0, rng);
    EXPECT_GE(ticks, 12);
    EXPECT_LE(ticks, 13);
  }
}

TEST(VloClock, MeasurementMeanTracksDuration) {
  VloClock clock;
  Rng rng{2};
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    sum += clock.measure_ticks(4e-3, 2.0, rng);
  }
  // floor(x + U) with U ~ Uniform[0,1) is unbiased: mean = x.
  EXPECT_NEAR(sum / trials, 4e-3 * 12e3, 0.2);
}

TEST(VloClock, TicksToDurationInverse) {
  VloClock::Params p;
  p.jitter_frac = 0.0;
  VloClock clock{p};
  Rng rng{3};
  EXPECT_NEAR(clock.ticks_to_duration(12, 2.0, rng), 1e-3, 1e-9);
  // Higher supply -> faster clock -> shorter interval.
  EXPECT_LT(clock.ticks_to_duration(12, 2.3, rng), 1e-3);
}

// ------------------------------------------------------------------ Msp430

struct McuFixture : ::testing::Test {
  EventQueue queue;
  Msp430 mcu{&queue, Msp430::Params{}, Rng{7}};
};

TEST_F(McuFixture, ModeResidencyAccounting) {
  mcu.power_up();
  queue.schedule_at(1.0, [&] { mcu.set_mode(energy::TagMode::kRx); });
  queue.schedule_at(1.5, [&] { mcu.set_mode(energy::TagMode::kIdle); });
  queue.schedule_at(4.0, [] {});
  queue.run();
  const auto& meter = mcu.meter();
  EXPECT_NEAR(meter.time_in(energy::TagMode::kRx), 0.5, 1e-9);
  EXPECT_NEAR(meter.time_in(energy::TagMode::kIdle), 3.5, 1e-9);
}

TEST_F(McuFixture, NoAccountingWhilePoweredDown) {
  queue.schedule_at(2.0, [&] { mcu.power_up(); });
  queue.schedule_at(5.0, [] {});
  queue.run();
  EXPECT_NEAR(mcu.meter().total_time(), 3.0, 1e-9);
}

TEST_F(McuFixture, EdgeInterruptsReachHandler) {
  mcu.power_up();
  int rising = 0, falling = 0;
  mcu.on_edge([&](bool r) { r ? ++rising : ++falling; });
  mcu.inject_edge(true);
  mcu.inject_edge(false);
  mcu.inject_edge(true);
  EXPECT_EQ(rising, 2);
  EXPECT_EQ(falling, 1);
}

TEST_F(McuFixture, EdgesIgnoredWhenUnpowered) {
  int count = 0;
  mcu.on_edge([&](bool) { ++count; });
  mcu.inject_edge(true);
  EXPECT_EQ(count, 0);
}

TEST_F(McuFixture, PeriodicTimerFiresAtTickIntervals) {
  mcu.power_up();
  int fires = 0;
  // 32 ticks at 12 kHz -> ~2.667 ms per fire.
  mcu.start_periodic(32, [&] { ++fires; });
  queue.run_until(0.1);
  EXPECT_NEAR(fires, 0.1 / (32.0 / 12e3), 3.0);
}

TEST_F(McuFixture, StopPeriodicCancels) {
  mcu.power_up();
  int fires = 0;
  mcu.start_periodic(12, [&] { ++fires; });
  queue.run_until(0.01);
  const int at_stop = fires;
  mcu.stop_periodic();
  queue.run_until(0.1);
  EXPECT_EQ(fires, at_stop);
}

TEST_F(McuFixture, PowerDownCancelsTimers) {
  mcu.power_up();
  int fires = 0;
  mcu.start_periodic(12, [&] { ++fires; });
  queue.run_until(0.01);
  mcu.power_down();
  const int at_down = fires;
  queue.run_until(0.2);
  EXPECT_EQ(fires, at_down);
}

TEST_F(McuFixture, TimeoutFiresOnce) {
  mcu.power_up();
  int fires = 0;
  mcu.schedule_timeout(0.05, [&] { ++fires; });
  queue.run_until(1.0);
  EXPECT_EQ(fires, 1);
}

TEST_F(McuFixture, TimeoutCancellable) {
  mcu.power_up();
  int fires = 0;
  const auto id = mcu.schedule_timeout(0.05, [&] { ++fires; });
  EXPECT_TRUE(mcu.cancel(id));
  queue.run_until(1.0);
  EXPECT_EQ(fires, 0);
}

TEST_F(McuFixture, TimerSpeedFollowsSupply) {
  mcu.power_up();
  mcu.set_supply(2.3);
  int fast_fires = 0;
  mcu.start_periodic(12, [&] { ++fast_fires; });
  queue.run_until(0.5);
  mcu.stop_periodic();

  EventQueue queue2;
  Msp430 slow{&queue2, Msp430::Params{}, Rng{7}};
  slow.power_up();
  slow.set_supply(1.95);
  int slow_fires = 0;
  slow.start_periodic(12, [&] { ++slow_fires; });
  queue2.run_until(0.5);
  EXPECT_GT(fast_fires, slow_fires);
}

TEST(Msp430Ctor, NullQueueThrows) {
  EXPECT_THROW((Msp430{nullptr, Msp430::Params{}, Rng{1}}),
               std::invalid_argument);
}

// ----------------------------------------------------------- DlDemodulator

TEST(DlDemod, ThresholdTicksAtDefaultRate) {
  DlDemodulator demod{DlDemodulator::Params{}};
  // 250 bps chips: 4 ms; threshold 1.5 chips = 6 ms = 72 ticks at 12 kHz.
  EXPECT_EQ(demod.threshold_ticks(), 72);
}

TEST(DlDemod, ReliableAtDefaultRate) {
  DlDemodulator demod{DlDemodulator::Params{}};
  Rng rng{11};
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = false}};
  // The paper reports beacon loss below 0.1% at 250 bps.
  EXPECT_LT(demod.loss_rate(beacon, 2.0, rng, 4000), 0.01);
}

TEST(DlDemod, LossSurgesAtHighRates) {
  // Fig. 13a: the 12 kHz timer + reader software jitter break PIE at
  // 1000/2000 bps.
  Rng rng{13};
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = true}};
  double previous = 0.0;
  double at_250 = 0.0, at_2000 = 0.0;
  for (double rate : {125.0, 250.0, 500.0, 1000.0, 2000.0}) {
    DlDemodulator::Params p;
    p.chip_rate = rate;
    DlDemodulator demod{p};
    const double loss = demod.loss_rate(beacon, 2.0, rng, 2000);
    if (rate == 250.0) at_250 = loss;
    if (rate == 2000.0) at_2000 = loss;
    EXPECT_GE(loss, previous - 0.02) << "rate " << rate;  // non-decreasing
    previous = loss;
  }
  EXPECT_LT(at_250, 0.01);
  EXPECT_GT(at_2000, 0.3);
}

TEST(DlDemod, SupplyVariationDoesNotRescueHighRate) {
  Rng rng{17};
  const phy::DlBeacon beacon{.cmd = {.ack = false, .empty = true}};
  DlDemodulator::Params p;
  p.chip_rate = 2000.0;
  DlDemodulator demod{p};
  const double nominal = demod.loss_rate(beacon, 2.0, rng, 3000);
  const double high_supply = demod.loss_rate(beacon, 2.3, rng, 3000);
  const double low_supply = demod.loss_rate(beacon, 1.95, rng, 3000);
  // The 2000 bps regime is jitter-limited across the whole supply range.
  EXPECT_GT(nominal, 0.3);
  EXPECT_GT(std::max(high_supply, low_supply), nominal * 0.8);
}

TEST(DlDemod, AllCommandPatternsSurviveDefaultRate) {
  Rng rng{19};
  DlDemodulator demod{DlDemodulator::Params{}};
  for (int mask = 0; mask < 8; ++mask) {
    const phy::DlBeacon beacon{.cmd = {.ack = (mask & 1) != 0,
                                       .empty = (mask & 2) != 0,
                                       .reset = (mask & 4) != 0}};
    int ok = 0;
    for (int i = 0; i < 200; ++i) {
      const auto rx = demod.demodulate(beacon, 2.0, rng);
      if (rx && *rx == beacon) ++ok;
    }
    EXPECT_GE(ok, 195) << "mask " << mask;
  }
}


// -------------------------------------------------- DL TX path + frontend

TEST(DlTxPath, FskInOokOutDecodesCleanly) {
  VloClock clock;
  reader::DlTransmitter tx{reader::DlTransmitter::Params{}};
  mcu::EnvelopeFrontend frontend;
  Rng rng{5};
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = true}};
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    const auto segs = tx.segments(beacon, rng);
    const auto rx = frontend.demodulate(segs, 250.0, 2.0, clock, rng);
    if (rx && *rx == beacon) ++ok;
  }
  EXPECT_GE(ok, 98);
}

TEST(DlTxPath, PureOokRingTailBreaksHighRates) {
  // Sec. 4.1: without the FSK-in/OOK-out displacement drive, the high-Q
  // structure rings through the PIE low intervals and framing collapses
  // once chips shrink toward the ring tail.
  VloClock clock;
  Rng rng{7};
  const phy::DlBeacon beacon{.cmd = {.ack = false, .empty = true}};
  const auto loss_at = [&](reader::DlTxMode mode, double rate) {
    reader::DlTransmitter::Params tp;
    tp.mode = mode;
    tp.chip_rate = rate;
    reader::DlTransmitter tx{tp};
    mcu::EnvelopeFrontend frontend;
    int lost = 0;
    const int rounds = 120;
    for (int i = 0; i < rounds; ++i) {
      const auto rx = frontend.demodulate(tx.segments(beacon, rng), rate, 2.0,
                                          clock, rng);
      if (!rx || !(*rx == beacon)) ++lost;
    }
    return static_cast<double>(lost) / rounds;
  };
  EXPECT_LT(loss_at(reader::DlTxMode::kFskInOokOut, 500.0), 0.05);
  EXPECT_GT(loss_at(reader::DlTxMode::kPureOok, 500.0), 0.9);
  // Both work at slow rates where chips dwarf the ring tail.
  EXPECT_LT(loss_at(reader::DlTxMode::kPureOok, 125.0), 0.05);
}

TEST(DlTxPath, SegmentsPreservePieStructure) {
  reader::DlTransmitter::Params tp;
  tp.edge_jitter_min_s = 0.0;
  tp.edge_jitter_max_s = 0.0;
  reader::DlTransmitter tx{tp};
  Rng rng{9};
  const phy::DlBeacon beacon{.cmd = {.ack = true, .empty = false}};
  const auto segs = tx.segments(beacon, rng);
  // Total on-air time equals the PIE chip count at the chip rate.
  double total = 0.0;
  for (const auto& s : segs) total += s.duration_s;
  EXPECT_NEAR(total, phy::dl_beacon_duration(beacon), 1e-9);
  // FSK mode never goes silent.
  for (const auto& s : segs) EXPECT_GT(s.frequency_hz, 0.0);
}

TEST(DlTxPath, FrontendComparatorHysteresis) {
  // A single resonant burst produces exactly one pulse of roughly the
  // burst duration.
  mcu::EnvelopeFrontend frontend;
  const std::vector<reader::DlSegment> segs{
      {90e3, 8e-3}, {78e3, 8e-3}};
  const auto pulses = frontend.pulse_durations(segs);
  ASSERT_EQ(pulses.size(), 1u);
  EXPECT_NEAR(pulses.front(), 8e-3, 1.5e-3);
}

}  // namespace
