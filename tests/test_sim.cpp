// Tests for the simulation kernel: RNG determinism and distribution sanity,
// event queue ordering, cancellation, and time semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "arachnet/sim/event_queue.hpp"
#include "arachnet/sim/linalg.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/sim/stats.hpp"
#include "arachnet/sim/units.hpp"

namespace {

using arachnet::sim::EventQueue;
using arachnet::sim::Histogram;
using arachnet::sim::Percentiles;
using arachnet::sim::Rng;
using arachnet::sim::RunningStats;

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntIsInRangeAndCoversAll) {
  Rng rng{7};
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) {
    const auto v = rng.uniform_int(8);
    ASSERT_LT(v, 8u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng{11};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{17};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{21};
  Rng child = parent.fork();
  // Child stream should not replay the parent stream.
  Rng parent2{21};
  (void)parent2.next_u64();  // same position as parent after fork
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child.next_u64() == parent2.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, JumpKnownAnswerVectors) {
  // Pinned outputs of the canonical xoshiro256++ jump polynomials on seed
  // 42. If these change, every recorded sweep stream changes with them —
  // fix the regression rather than the vectors.
  Rng a{42};
  a.jump();
  const std::uint64_t jump_expected[] = {
      0xc0b6f4be293b1ae5ULL, 0x5db3dd9683e7bb33ULL,
      0x08d177efba75b08eULL, 0xdd4b9019a605434dULL};
  for (std::uint64_t e : jump_expected) EXPECT_EQ(a.next_u64(), e);

  Rng b{42};
  b.long_jump();
  const std::uint64_t long_jump_expected[] = {
      0x02019a87bfc0bb07ULL, 0x25bee49209717963ULL,
      0x210470a1c31829f5ULL, 0x177eb6d945c458c2ULL};
  for (std::uint64_t e : long_jump_expected) EXPECT_EQ(b.next_u64(), e);
}

TEST(Rng, JumpedStreamDoesNotReplayParent) {
  Rng parent{33};
  Rng jumped{33};
  jumped.jump();
  int equal = 0;
  for (int i = 0; i < 256; ++i) equal += (parent.next_u64() == jumped.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitKnownAnswerVectors) {
  const Rng master{42};
  Rng s0 = master.split(0);
  Rng s1 = master.split(1);
  Rng sdb = master.split(0xdeadbeef);
  EXPECT_EQ(s0.next_u64(), 0x0b9fd2fd32eb6b8dULL);
  EXPECT_EQ(s0.next_u64(), 0x7bc159b168e61c86ULL);
  EXPECT_EQ(s1.next_u64(), 0xdf7e0a57d2d9a3baULL);
  EXPECT_EQ(s1.next_u64(), 0x483d9e83b6ff1971ULL);
  EXPECT_EQ(sdb.next_u64(), 0xa93cb3339e13ed60ULL);
  EXPECT_EQ(sdb.next_u64(), 0xa68f68a19790a95fULL);
}

TEST(Rng, SplitIsDeterministicAndPure) {
  Rng master{2024};
  Rng a = master.split(17);
  Rng b = master.split(17);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // split() must not advance the parent: it still replays a fresh stream.
  Rng fresh{2024};
  for (int i = 0; i < 64; ++i) EXPECT_EQ(master.next_u64(), fresh.next_u64());
}

TEST(Rng, SplitStreamsAreMutuallyIndependent) {
  const Rng master{5};
  // Pairwise collision scan across a few streams, including adjacent ids.
  const std::uint64_t ids[] = {0, 1, 2, 63, 64, 1u << 20};
  for (std::size_t i = 0; i < std::size(ids); ++i) {
    for (std::size_t j = i + 1; j < std::size(ids); ++j) {
      Rng a = master.split(ids[i]);
      Rng b = master.split(ids[j]);
      int equal = 0;
      for (int k = 0; k < 128; ++k) equal += (a.next_u64() == b.next_u64());
      EXPECT_LT(equal, 3) << ids[i] << " vs " << ids[j];
    }
  }
}

TEST(Rng, SplitOfSplitIsIndependent) {
  // Nested splits (a sweep trial splitting again for sub-streams) must not
  // collide with each other or with sibling-derived streams.
  const Rng master{99};
  const Rng t0 = master.split(0);
  const Rng t1 = master.split(1);
  Rng a = t0.split(0);
  Rng b = t1.split(0);  // same stream id, different parent
  Rng c = t0.split(1);
  int ab = 0, ac = 0;
  for (int k = 0; k < 128; ++k) {
    const std::uint64_t va = a.next_u64();
    ab += (va == b.next_u64());
    ac += (va == c.next_u64());
  }
  EXPECT_LT(ab, 3);
  EXPECT_LT(ac, 3);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(q.cancel(id));  // double-cancel is a no-op
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(10.0, [&] { ++count; });
  const auto executed = q.run_until(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule_at(4.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PendingCountTracksCancellations) {
  EventQueue q;
  const auto a = q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
  q.run();
  EXPECT_TRUE(q.empty());
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentilesInterpolate) {
  Percentiles p{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 4.0);
  EXPECT_DOUBLE_EQ(p.median(), 2.5);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(p.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(100.0), 1.0);
}

TEST(Stats, PercentilesEdgeCases) {
  // Empty sample sets are a caller bug, not a silent zero.
  EXPECT_THROW(Percentiles{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW(arachnet::sim::percentile({}, 0.5), std::invalid_argument);

  // A single sample answers every quantile.
  Percentiles one{{7.5}};
  EXPECT_DOUBLE_EQ(one.at(0.0), 7.5);
  EXPECT_DOUBLE_EQ(one.at(0.5), 7.5);
  EXPECT_DOUBLE_EQ(one.at(1.0), 7.5);
  EXPECT_EQ(one.count(), 1u);

  // Duplicates: quantiles inside a run of equal values stay on the value.
  Percentiles dup{{2.0, 2.0, 2.0, 2.0, 8.0}};
  EXPECT_DOUBLE_EQ(dup.at(0.25), 2.0);
  EXPECT_DOUBLE_EQ(dup.at(0.5), 2.0);
  EXPECT_DOUBLE_EQ(dup.at(1.0), 8.0);
  EXPECT_DOUBLE_EQ(dup.cdf(2.0), 0.8);
  EXPECT_DOUBLE_EQ(dup.cdf(1.999), 0.0);

  // Unsorted input is sorted internally; the free function agrees with
  // the class on the same data.
  const std::vector<double> data{5.0, 1.0, 4.0, 2.0, 3.0};
  Percentiles p{data};
  for (double q : {0.0, 0.1, 0.37, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(p.at(q), arachnet::sim::percentile(data, q)) << q;
  }
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 5.0);
}

TEST(Stats, HistogramRejectsInvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);   // empty range
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);   // inverted
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);   // no bins
}

TEST(Stats, HistogramBinsAndOutOfRangeCounters) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // underflow: must NOT land in the first bin
  h.add(100.0);  // overflow: must NOT land in the last bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.in_range(), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(9), 10.0);
}

TEST(Stats, HistogramEdgeSemantics) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.0);                          // lo is inclusive
  h.add(10.0);                         // hi is exclusive -> overflow
  h.add(std::nextafter(10.0, 0.0));    // just inside -> top bin
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(Units, DbConversionsRoundTrip) {
  using namespace arachnet::sim;
  EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
  EXPECT_NEAR(db_to_amplitude(6.0206), 2.0, 1e-3);
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-9);
  for (double db : {-30.0, -3.0, 0.0, 3.0, 17.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
  }
}


TEST(Linalg, SolvesSmallSystems) {
  using arachnet::sim::Matrix;
  Matrix a{2, 2};
  a.at(0, 0) = 2.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 3.0;
  const auto x = arachnet::sim::solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, PivotsWhenLeadingZero) {
  using arachnet::sim::Matrix;
  Matrix a{2, 2};
  a.at(0, 0) = 0.0; a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0; a.at(1, 1) = 0.0;
  const auto x = arachnet::sim::solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, IdentitySolvesToRhs) {
  const auto x =
      arachnet::sim::solve(arachnet::sim::Matrix::identity(4),
                           {1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)], i + 1.0);
}

TEST(Linalg, SingularMatrixThrows) {
  using arachnet::sim::Matrix;
  Matrix a{2, 2};
  a.at(0, 0) = 1.0; a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0; a.at(1, 1) = 4.0;
  EXPECT_THROW(arachnet::sim::solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Linalg, RandomSystemRoundTrip) {
  using arachnet::sim::Matrix;
  arachnet::sim::Rng rng{55};
  const std::size_t n = 20;
  Matrix a{n, n};
  std::vector<double> x_true(n);
  for (std::size_t r = 0; r < n; ++r) {
    x_true[r] = rng.normal();
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.normal();
    a.at(r, r) += 5.0;  // keep it comfortably nonsingular
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) b[r] += a.at(r, c) * x_true[c];
  }
  const auto x = arachnet::sim::solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

}  // namespace
