// Fleet-scale sharded multi-reader engine: bus ordering/bounding, dedup
// window behaviour, planner coloring, shard-count bit-exactness, parity
// against merged single-reader references, handoff/dedup/membership edge
// cases, and a small waveform-mode fleet. Labeled `concurrency` in CTest
// so the whole file runs under TSan via `ctest -L concurrency` on a
// -DARACHNET_SANITIZE=thread build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "arachnet/fleet/bus.hpp"
#include "arachnet/fleet/dedup.hpp"
#include "arachnet/fleet/fleet_engine.hpp"
#include "arachnet/fleet/planner.hpp"
#include "arachnet/telemetry/metrics.hpp"

namespace {

using namespace arachnet;
using fleet::BusMessage;
using fleet::DedupWindow;
using fleet::FleetEngine;
using fleet::FleetPacket;
using fleet::GridPlanner;
using fleet::MessageBus;
using fleet::Topic;

// ------------------------------------------------------------ MessageBus

TEST(MessageBus, CommitOrdersByPriorityThenPublisherThenSequence) {
  MessageBus bus{{}, 3};
  // Publish out of publisher order with mixed priorities.
  bus.publish(2, {Topic::kPacket, 0, -1, 1, 0, 42});
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 10});
  bus.publish(0, {Topic::kPacket, 0, -1, 5, 0, 11});
  bus.publish(1, {Topic::kHandoff, 0, -1, 5, 0, 20});
  bus.commit();
  const auto& out = bus.drain();
  ASSERT_EQ(out.size(), 4u);
  // Priority 5 first (publisher 0 before 1), then priority 1 (publisher
  // 0 before 2).
  EXPECT_EQ(out[0].a, 11u);
  EXPECT_EQ(out[1].a, 20u);
  EXPECT_EQ(out[2].a, 10u);
  EXPECT_EQ(out[3].a, 42u);
  // Per-topic delivery sequences count per topic, in delivery order.
  EXPECT_EQ(out[0].topic_seq, 0u);  // first kPacket
  EXPECT_EQ(out[1].topic_seq, 0u);  // first kHandoff
  EXPECT_EQ(out[2].topic_seq, 1u);
  EXPECT_EQ(out[3].topic_seq, 2u);
}

TEST(MessageBus, CapacityDisplacesLowestPriorityNewest) {
  MessageBus::Params bp;
  bp.capacity = 2;
  bp.max_deliveries_per_commit = 1;
  MessageBus bus{bp, 1};
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 1});
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 2});
  bus.publish(0, {Topic::kPacket, 0, -1, 9, 0, 3});
  bus.commit();
  // Backlog of 3 exceeds capacity 2: the lowest-priority NEWEST entry
  // (a=2) is displaced; the high-priority message is delivered first.
  const auto& out = bus.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a, 3u);
  EXPECT_EQ(bus.stats().displaced, 1u);
  bus.commit();
  ASSERT_EQ(bus.drain().size(), 1u);
  EXPECT_EQ(bus.drain()[0].a, 1u);
}

TEST(MessageBus, TtlExpiresUndeliveredMessages) {
  MessageBus::Params bp;
  bp.max_deliveries_per_commit = 1;
  bp.default_ttl_epochs = 2;
  MessageBus bus{bp, 1};
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 1});
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 2});
  bus.publish(0, {Topic::kPacket, 0, -1, 1, 0, 3});
  bus.commit();  // delivers 1; {2,3} wait with ttl=2
  bus.commit();  // ages to 1, delivers 2; {3} waits with ttl=1
  bus.commit();  // ages 3 to 0 -> expired; nothing left
  EXPECT_EQ(bus.drain().size(), 0u);
  EXPECT_EQ(bus.stats().delivered, 2u);
  EXPECT_EQ(bus.stats().expired, 1u);
  EXPECT_EQ(bus.stats().depth, 0u);
}

TEST(MessageBus, SimultaneousReportsTieBreakByPublisherId) {
  // Two readers decode the same transmission in the same epoch; the bus
  // must order them identically every run — publisher id ascending — so
  // the dedup admits reader 1's report and suppresses reader 3's.
  MessageBus bus{{}, 4};
  bus.publish(3, {Topic::kPacket, 0, -1, 1, 0, /*tag*/ 7, /*slot*/ 100});
  bus.publish(1, {Topic::kPacket, 0, -1, 1, 0, 7, 100});
  bus.commit();
  const auto& out = bus.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].from, 1);
  EXPECT_EQ(out[1].from, 3);
  DedupWindow window{16};
  EXPECT_TRUE(window.admit(7, 100, 3));
  EXPECT_FALSE(window.admit(7, 100, 3));
  EXPECT_EQ(window.stats().suppressed, 1u);
}

// ------------------------------------------------------------ DedupWindow

TEST(DedupWindow, SuppressesWithinWindowAndEvictsFifo) {
  DedupWindow w{2};
  EXPECT_TRUE(w.admit(1, 10, 0));
  EXPECT_FALSE(w.admit(1, 10, 0));  // duplicate caught
  EXPECT_TRUE(w.admit(2, 20, 0));
  EXPECT_TRUE(w.admit(3, 30, 0));   // evicts (1,10,0)
  EXPECT_TRUE(w.admit(1, 10, 0));   // leaked past the eviction
  EXPECT_EQ(w.stats().suppressed, 1u);
  EXPECT_GE(w.stats().evicted, 2u);
  EXPECT_LE(w.size(), w.capacity());
}

// ------------------------------------------------------------ GridPlanner

TEST(GridPlanner, RingGetsDisjointChannelBlocks) {
  GridPlanner planner{{16}};
  std::vector<std::vector<int>> ring(6);
  for (int i = 0; i < 6; ++i) ring[i] = {(i + 1) % 6};
  const auto plan = planner.plan(6, ring);
  ASSERT_EQ(plan.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    const auto& a = plan[i];
    const auto& b = plan[(i + 1) % 6];
    EXPECT_NE(a.chan_begin, b.chan_begin) << "adjacent readers share a block";
    EXPECT_EQ(a.tdma_stride, 1u) << "enough channels: no TDMA needed";
  }
  // An even ring is 2-colorable; each color gets half the grid.
  EXPECT_EQ(GridPlanner::color_count(plan), 2u);
  EXPECT_EQ(plan[0].chan_count, 8u);
}

TEST(GridPlanner, TdmaAbsorbsColorOverflow) {
  // Odd ring needs 3 colors but only 2 channels exist: the surplus color
  // time-slices. No two interfering readers may share (channel, phase).
  GridPlanner planner{{2}};
  std::vector<std::vector<int>> ring(5);
  for (int i = 0; i < 5; ++i) ring[i] = {(i + 1) % 5};
  const auto plan = planner.plan(5, ring);
  bool any_tdma = false;
  for (int i = 0; i < 5; ++i) {
    const auto& a = plan[i];
    const auto& b = plan[(i + 1) % 5];
    EXPECT_FALSE(a.chan_begin == b.chan_begin &&
                 a.tdma_phase == b.tdma_phase)
        << "interfering readers " << i << " and " << (i + 1) % 5
        << " share channel AND phase";
    if (a.tdma_stride > 1) any_tdma = true;
  }
  EXPECT_TRUE(any_tdma);
}

TEST(GridPlanner, NoInterferenceSharesFullGrid) {
  GridPlanner planner{{16}};
  const auto plan = planner.plan(4, std::vector<std::vector<int>>(4));
  for (const auto& a : plan) {
    EXPECT_EQ(a.chan_begin, 0u);
    EXPECT_EQ(a.chan_count, 16u);
    EXPECT_EQ(a.tdma_stride, 1u);
  }
}

// ------------------------------------------------- FleetEngine (slot mode)

FleetEngine::Params overlap_params(std::size_t shards) {
  FleetEngine::Params p;
  p.mode = FleetEngine::Mode::kSlot;
  p.readers = 4;
  p.shards = shards;
  p.seed = 99;
  p.tags_per_reader = 4;
  p.slots_per_epoch = 32;
  p.neighbor_gain = 0.6;
  p.gain_drift_amplitude = 0.5;
  p.overhear_threshold = 0.85;
  p.handoff_margin = 0.05;
  return p;
}

TEST(FleetEngine, BitExactAtAnyShardCount) {
  // A coordination-heavy scenario (overlap, drift, handoffs, duplicates)
  // must produce the identical packet log at shard widths 1, 2, 4, 8.
  std::vector<std::uint64_t> digests;
  std::vector<std::vector<FleetPacket>> logs;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    FleetEngine eng{overlap_params(shards)};
    eng.run_epochs(16);
    eng.flush();
    digests.push_back(eng.digest());
    logs.push_back(eng.packet_log());
    EXPECT_GT(eng.stats().packets, 0u);
  }
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_EQ(digests[i], digests[0]) << "shard width diverged";
    EXPECT_EQ(logs[i], logs[0]);
  }
}

TEST(FleetEngine, CoordinationPrimitivesEngage) {
  FleetEngine eng{overlap_params(4)};
  eng.run_epochs(24);
  eng.flush();
  const auto s = eng.stats();
  EXPECT_GT(s.packets, 0u);
  EXPECT_GT(s.handoffs, 0u) << "gain drift should move ownership";
  EXPECT_GT(s.dup_suppressed, 0u) << "overhearing should produce echoes";
  EXPECT_EQ(s.conflicts, 0u) << "planner on: no co-channel collisions";
  EXPECT_EQ(s.dup_passed, 0u) << "window 4096 must catch every echo";
  EXPECT_GT(s.bus.published, 0u);
  EXPECT_GT(s.bus.delivered, 0u);
}

TEST(FleetEngine, PlannerOffCausesCoChannelConflicts) {
  auto p = overlap_params(2);
  p.planner_enabled = false;
  FleetEngine eng{p};
  eng.run_epochs(24);
  eng.flush();
  EXPECT_GT(eng.stats().conflicts, 0u)
      << "without the planner, adjacent readers collide on channel 0";
}

TEST(FleetEngine, SequencesStayMonotonicPerTagAcrossHandoffs) {
  FleetEngine eng{overlap_params(4)};
  eng.run_epochs(24);
  eng.flush();
  std::map<std::uint32_t, std::uint32_t> last_seq;
  std::map<std::uint32_t, std::int64_t> last_slot;
  bool decoded_by_non_home = false;
  for (const auto& pkt : eng.packet_log()) {
    if (pkt.seq == 0) continue;  // flagged replays are unordered
    auto [it, fresh] = last_seq.try_emplace(pkt.tag, 0);
    EXPECT_GT(pkt.seq, it->second)
        << "tag " << pkt.tag << " sequence regressed";
    it->second = pkt.seq;
    auto [st, s_fresh] = last_slot.try_emplace(pkt.tag, -1);
    EXPECT_GT(pkt.slot, st->second);
    st->second = pkt.slot;
    const auto home = static_cast<int>(pkt.tag / 4);
    if (pkt.reader != home && !pkt.overheard) decoded_by_non_home = true;
  }
  // A handoff target decodes the tag as its owner (not as an overhearer):
  // proof that ownership actually moved the tag between shards.
  EXPECT_TRUE(decoded_by_non_home);
  EXPECT_GT(eng.stats().handoffs, 0u);
}

TEST(FleetEngine, TinyDedupWindowLeaksAreFlaggedDeterministically) {
  auto p = overlap_params(2);
  p.dedup_window = 4;  // evicts within an epoch: echoes leak through
  FleetEngine a{p};
  a.run_epochs(16);
  a.flush();
  EXPECT_GT(a.stats().dup_passed, 0u);
  for (const auto& pkt : a.packet_log()) {
    if (pkt.seq == 0) EXPECT_TRUE(pkt.overheard);
  }
  // Still deterministic: the leak pattern is part of the contract.
  FleetEngine b{p};
  b.run_epochs(16);
  b.flush();
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(FleetEngine, ParityWithMergedSingleReaderReferences) {
  // Disjoint coverage: a 4-reader fleet must equal the deterministic
  // merge of four 1-reader engines carved out of the same global fleet.
  auto fleet_params = overlap_params(4);
  fleet_params.neighbor_gain = 0.0;  // no overlap, no drift, no handoffs
  FleetEngine whole{fleet_params};
  whole.run_epochs(12);
  whole.flush();

  std::vector<FleetPacket> merged;
  for (int r = 0; r < 4; ++r) {
    auto p = fleet_params;
    p.readers = 1;
    p.shards = 1;
    p.first_reader_id = r;
    p.total_readers = 4;
    FleetEngine single{p};
    single.run_epochs(12);
    single.flush();
    const auto& log = single.packet_log();
    merged.insert(merged.end(), log.begin(), log.end());
  }
  // The fleet's coordinator orders each epoch by reader id, then slot.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FleetPacket& x, const FleetPacket& y) {
                     if (x.epoch != y.epoch) return x.epoch < y.epoch;
                     if (x.reader != y.reader) return x.reader < y.reader;
                     return x.slot < y.slot;
                   });
  ASSERT_GT(whole.packet_log().size(), 0u);
  EXPECT_EQ(whole.packet_log(), merged);
}

TEST(FleetEngine, ReaderLeaveAndJoinMidRun) {
  auto p = overlap_params(4);
  FleetEngine eng{p};
  eng.run_epochs(6);
  eng.request_leave(1);
  eng.run_epochs(1);  // membership applies at the next pre-phase
  EXPECT_FALSE(eng.reader_active(1));
  // Reader 1's tags must now belong to other, active readers.
  for (std::uint32_t t = 4; t < 8; ++t) {
    EXPECT_NE(eng.tag_owner(t), 1) << "tag " << t << " stuck on leaver";
    EXPECT_TRUE(eng.reader_active(eng.tag_owner(t)));
  }
  const auto packets_before = eng.stats().packets;
  eng.run_epochs(8);
  EXPECT_GT(eng.stats().packets, packets_before)
      << "fleet keeps decoding after a leave";
  eng.request_join(1);
  eng.run_epochs(1);
  EXPECT_TRUE(eng.reader_active(1));
  eng.run_epochs(12);
  eng.flush();
  // Home coverage (gain 1.0) dominates the drifting neighbours, so the
  // rejoined reader wins its tags back.
  int owned = 0;
  for (std::uint32_t t = 4; t < 8; ++t) {
    if (eng.tag_owner(t) == 1) ++owned;
  }
  EXPECT_GT(owned, 0) << "rejoined reader never regained a tag";

  // The whole churn sequence is deterministic, including across shard
  // widths.
  const auto rerun = [&](std::size_t shards) {
    auto q = overlap_params(shards);
    FleetEngine e{q};
    e.run_epochs(6);
    e.request_leave(1);
    e.run_epochs(9);
    e.request_join(1);
    e.run_epochs(13);
    e.flush();
    return e.digest();
  };
  EXPECT_EQ(rerun(1), rerun(4));
}

TEST(FleetEngine, ScopedMetricsKeepFleetsApart) {
  telemetry::MetricsRegistry reg;
  auto pa = overlap_params(1);
  pa.metrics = &reg;
  pa.metrics_scope = "f0.";
  auto pb = overlap_params(1);
  pb.metrics = &reg;
  pb.metrics_scope = "f1.";
  FleetEngine a{pa};
  FleetEngine b{pb};
  a.run_epochs(4);
  a.flush();
  const auto snap = reg.snapshot();
  std::uint64_t a_packets = 0, b_packets = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "f0.fleet.packets") a_packets = c.value;
    if (c.name == "f1.fleet.packets") b_packets = c.value;
  }
  EXPECT_EQ(a_packets, a.stats().packets);
  EXPECT_EQ(b_packets, 0u) << "idle fleet's scoped counter must stay 0";
}

// --------------------------------------------- FleetEngine (waveform mode)

TEST(FleetEngine, WaveformFleetDecodesAndMatchesAcrossShardWidths) {
  FleetEngine::Params p;
  p.mode = FleetEngine::Mode::kWaveform;
  p.readers = 2;
  p.seed = 7;
  p.channels_per_reader = 2;
  p.epoch_duration_s = 0.25;
  const auto run = [&](std::size_t shards) {
    auto q = p;
    q.shards = shards;
    FleetEngine eng{q};
    eng.run_epochs(2);
    eng.flush();
    return std::pair{eng.digest(), eng.stats().packets};
  };
  const auto [d1, n1] = run(1);
  const auto [d2, n2] = run(2);
  EXPECT_GT(n1, 0u) << "waveform shards decoded nothing";
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(d1, d2) << "waveform fleet diverged across shard widths";
}

}  // namespace
