// Tests for the SIMD kernel tier (dsp/kernels/simd/ + cpu_dispatch):
// runtime ISA dispatch and its clamping rules, the kernel-policy env
// parsing (including the structured WARN on unrecognized values), the
// float32 SimdNco against a long-double phase reference over 10^8
// samples and at near-Nyquist steps, the float32 FIR stages against the
// double block kernels (including denormal and NaN blocks), Ddc /
// derotate / channelizer parity, and — the load-bearing guarantee — that
// the kSimd policy decodes the identical packet set as the scalar
// reference, on the hardware tier and on the forced portable fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <map>
#include <numbers>
#include <span>
#include <string>
#include <vector>

#include "arachnet/acoustic/waveform_channel.hpp"
#include "arachnet/dsp/ddc.hpp"
#include "arachnet/dsp/fir.hpp"
#include "arachnet/dsp/kernels/channelizer.hpp"
#include "arachnet/dsp/kernels/cpu_dispatch.hpp"
#include "arachnet/dsp/kernels/fir_kernels.hpp"
#include "arachnet/dsp/kernels/kernel_policy.hpp"
#include "arachnet/dsp/kernels/simd/simd_kernels.hpp"
#include "arachnet/dsp/kernels/simd/stages.hpp"
#include "arachnet/phy/fm0.hpp"
#include "arachnet/phy/packet.hpp"
#include "arachnet/phy/subcarrier.hpp"
#include "arachnet/reader/fdma_rx.hpp"
#include "arachnet/sim/rng.hpp"
#include "arachnet/telemetry/log.hpp"

namespace {

using namespace arachnet;
using cplx = std::complex<double>;

constexpr double kPi = std::numbers::pi;

// ----------------------------------------------------------- cpu_dispatch

TEST(CpuDispatch, ActiveTierIsSupportedAndTableMatches) {
  const dsp::CpuFeatures& f = dsp::detect_cpu_features();
  const dsp::SimdIsa isa = dsp::active_simd_isa();
  if (isa == dsp::SimdIsa::kAvx2) {
    EXPECT_TRUE(f.avx2 && f.fma);
  }
  if (isa == dsp::SimdIsa::kAvx512) {
    EXPECT_TRUE(f.avx512f && f.avx512vl && f.fma);
  }
  if (isa == dsp::SimdIsa::kNeon) {
    EXPECT_TRUE(f.neon);
  }
  EXPECT_STREQ(dsp::simd::kernels().isa, dsp::to_string(isa));
  EXPECT_FALSE(dsp::cpu_feature_string().empty());
}

TEST(CpuDispatch, ForceClampsToHardwareAndBuild) {
  const dsp::SimdIsa before = dsp::active_simd_isa();
  const dsp::CpuFeatures& f = dsp::detect_cpu_features();

  dsp::force_simd_isa(dsp::SimdIsa::kGeneric);
  // On aarch64 the portable tier *is* the NEON tier; everywhere else the
  // request must be honored exactly.
  const dsp::SimdIsa portable = dsp::active_simd_isa();
  EXPECT_EQ(portable, f.neon ? dsp::SimdIsa::kNeon : dsp::SimdIsa::kGeneric);
  EXPECT_STREQ(dsp::simd::kernels().isa, dsp::to_string(portable));

  dsp::force_simd_isa(dsp::SimdIsa::kAvx2);
#if defined(ARACHNET_DISABLE_SIMD)
  // The build compiled the AVX2 tier out: the request must degrade.
  EXPECT_NE(dsp::active_simd_isa(), dsp::SimdIsa::kAvx2);
#else
  if (f.avx2 && f.fma) {
    EXPECT_EQ(dsp::active_simd_isa(), dsp::SimdIsa::kAvx2);
  } else {
    EXPECT_NE(dsp::active_simd_isa(), dsp::SimdIsa::kAvx2);
  }
#endif
  EXPECT_STREQ(dsp::simd::kernels().isa,
               dsp::to_string(dsp::active_simd_isa()));

  dsp::force_simd_isa(dsp::SimdIsa::kAvx512);
#if defined(ARACHNET_DISABLE_SIMD)
  EXPECT_NE(dsp::active_simd_isa(), dsp::SimdIsa::kAvx512);
#else
  if (f.avx512f && f.avx512vl && f.fma) {
    EXPECT_EQ(dsp::active_simd_isa(), dsp::SimdIsa::kAvx512);
  } else if (f.avx2 && f.fma) {
    // The 512 request degrades one tier, not all the way to portable.
    EXPECT_EQ(dsp::active_simd_isa(), dsp::SimdIsa::kAvx2);
  } else {
    EXPECT_NE(dsp::active_simd_isa(), dsp::SimdIsa::kAvx512);
  }
#endif
  EXPECT_STREQ(dsp::simd::kernels().isa,
               dsp::to_string(dsp::active_simd_isa()));

  dsp::force_simd_isa(before);
  EXPECT_EQ(dsp::active_simd_isa(), before);
}

// --------------------------------------------------- kernel policy env

struct CapturedLog {
  int count = 0;
  telemetry::LogLevel level = telemetry::LogLevel::kTrace;
  std::string component;
  std::string message;
  std::map<std::string, std::string> string_fields;
};

void capture_sink(const telemetry::LogRecord& rec, void* user) {
  auto* cap = static_cast<CapturedLog*>(user);
  ++cap->count;
  cap->level = rec.level;
  cap->component = std::string{rec.component};
  cap->message = std::string{rec.message};
  for (std::size_t i = 0; i < rec.field_count; ++i) {
    const telemetry::LogField& field = rec.fields[i];
    if (field.kind == telemetry::LogField::Kind::kString) {
      cap->string_fields[std::string{field.key}] = std::string{field.s};
    }
  }
}

TEST(KernelPolicyEnv, ParseAcceptsAllThreeTiers) {
  EXPECT_EQ(dsp::parse_kernel_policy("scalar"), dsp::KernelPolicy::kScalar);
  EXPECT_EQ(dsp::parse_kernel_policy("block"), dsp::KernelPolicy::kBlock);
  EXPECT_EQ(dsp::parse_kernel_policy("simd"), dsp::KernelPolicy::kSimd);
  EXPECT_FALSE(dsp::parse_kernel_policy("turbo").has_value());
  EXPECT_FALSE(dsp::parse_kernel_policy("").has_value());
}

TEST(KernelPolicyEnv, UnrecognizedValueWarnsNamingValueAndFallback) {
  CapturedLog cap;
  telemetry::set_log_sink(capture_sink, &cap);

  // Unset and recognized values resolve silently.
  EXPECT_EQ(dsp::kernel_policy_from_env_value(nullptr),
            dsp::KernelPolicy::kBlock);
  EXPECT_EQ(dsp::kernel_policy_from_env_value("simd"),
            dsp::KernelPolicy::kSimd);
  EXPECT_EQ(cap.count, 0);

  // An unrecognized value falls back to kBlock with a WARN that names
  // what was rejected, what it fell back to, and what is accepted —
  // instead of the old silent fallback.
  EXPECT_EQ(dsp::kernel_policy_from_env_value("turbo"),
            dsp::KernelPolicy::kBlock);
  telemetry::set_log_sink(telemetry::stderr_log_sink);
  ASSERT_EQ(cap.count, 1);
  EXPECT_EQ(cap.level, telemetry::LogLevel::kWarn);
  EXPECT_EQ(cap.component, "kernels");
  EXPECT_EQ(cap.string_fields["value"], "turbo");
  EXPECT_EQ(cap.string_fields["fallback"], "block");
  EXPECT_NE(cap.string_fields["accepted"].find("simd"), std::string::npos);
}

// --------------------------------------------------------------- SimdNco

// Long-double phase reference: exact enough (ulp ~1e-11 at 10^8 steps)
// to measure the simd oscillator's drift rather than its own.
cplx reference_phasor(double phase0, double step, std::size_t index) {
  const long double p =
      static_cast<long double>(phase0) +
      static_cast<long double>(index) * static_cast<long double>(step);
  const long double wrapped =
      std::remainder(p, 2.0L * std::numbers::pi_v<long double>);
  return {static_cast<double>(std::cos(wrapped)),
          static_cast<double>(std::sin(wrapped))};
}

TEST(SimdNco, PhaseStaysLockedOverHundredMillionSamples) {
  // The drift requirement behind the per-chunk reseed: after >= 10^8
  // samples the oscillator must still be phase-locked — float32 lane
  // error must not accumulate across chunks. Unit input makes the output
  // the bare phasor.
  const double phase0 = 0.25;
  const double step = -2.0 * kPi * 90e3 / 500e3;  // the DDC carrier step
  dsp::simd::SimdNco nco{phase0, step};
  constexpr std::size_t kBlockLen = 1u << 16;
  constexpr std::size_t kTarget = 100'000'000;
  std::vector<double> in(kBlockLen, 1.0);
  std::vector<float> out(2 * kBlockLen);
  std::size_t done = 0;
  while (done < kTarget) {
    nco.mix_real(in.data(), out.data(), kBlockLen);
    done += kBlockLen;
  }
  ASSERT_GE(done, kTarget);
  // Every 997th sample of the final block (plus the very last) against
  // the reference: in-chunk float32 drift ~1e-4 rad plus ~1e-5 rad of
  // accumulated double master-phase rounding stays far under 2e-3.
  const std::size_t base = done - kBlockLen;
  for (std::size_t k = 0; k < kBlockLen; k += 997) {
    const cplx want = reference_phasor(phase0, step, base + k);
    EXPECT_NEAR(out[2 * k], want.real(), 2e-3) << "sample " << base + k;
    EXPECT_NEAR(out[2 * k + 1], want.imag(), 2e-3) << "sample " << base + k;
  }
  const cplx last = reference_phasor(phase0, step, done - 1);
  EXPECT_NEAR(out[2 * (kBlockLen - 1)], last.real(), 2e-3);
  EXPECT_NEAR(out[2 * (kBlockLen - 1) + 1], last.imag(), 2e-3);
  // The lanes stay on the unit circle (no amplitude decay either way).
  for (std::size_t k = 0; k < kBlockLen; k += 131) {
    const double mag = std::hypot(static_cast<double>(out[2 * k]),
                                  static_cast<double>(out[2 * k + 1]));
    ASSERT_NEAR(mag, 1.0, 1e-3) << "sample " << base + k;
  }
}

TEST(SimdNco, NearNyquistStepStaysAccurate) {
  // A subcarrier just under Nyquist: the per-sample step is almost pi,
  // the worst case for the lane rotator (the 8-step advance wraps nearly
  // four full turns between reseeds).
  const double phase0 = -1.1;
  const double step = 2.0 * kPi * 0.49;
  dsp::simd::SimdNco nco{phase0, step};
  constexpr std::size_t kBlockLen = 1u << 15;
  std::vector<double> in(kBlockLen, 1.0);
  std::vector<float> out(2 * kBlockLen);
  std::size_t base = 0;
  for (int block = 0; block < 64; ++block) {  // ~2.1M samples
    nco.mix_real(in.data(), out.data(), kBlockLen);
    for (std::size_t k = 0; k < kBlockLen; k += 509) {
      const cplx want = reference_phasor(phase0, step, base + k);
      ASSERT_NEAR(out[2 * k], want.real(), 2e-3) << "sample " << base + k;
      ASSERT_NEAR(out[2 * k + 1], want.imag(), 2e-3)
          << "sample " << base + k;
    }
    base += kBlockLen;
  }
}

TEST(SimdNco, ComplexMixMatchesScalarRotation) {
  sim::Rng rng{31};
  const double phase0 = 0.5;
  const double step = -0.71;
  std::vector<cplx> in(5000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  std::vector<float> out(2 * in.size());
  dsp::simd::SimdNco nco{phase0, step};
  nco.mix(in.data(), out.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ph = phase0 + static_cast<double>(i) * step;
    const cplx want = in[i] * cplx{std::cos(ph), std::sin(ph)};
    EXPECT_NEAR(out[2 * i], want.real(), 1e-4) << "sample " << i;
    EXPECT_NEAR(out[2 * i + 1], want.imag(), 1e-4) << "sample " << i;
  }
}

// ------------------------------------------------------------ FIR stages

std::vector<float> to_interleaved(const std::vector<cplx>& in) {
  std::vector<float> out(2 * in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[2 * i] = static_cast<float>(in[i].real());
    out[2 * i + 1] = static_cast<float>(in[i].imag());
  }
  return out;
}

TEST(FirSimd, FilterMatchesBlockFilterWithinFloatTolerance) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 127);
  dsp::FirBlockFilter<cplx> ref{coeffs};
  dsp::simd::FirSimdFilter simd{coeffs};
  sim::Rng rng{32};
  std::vector<cplx> in, want;
  // Chunk sizes smaller and larger than the tap count: history carry
  // must line up with the double block filter at every split.
  for (std::size_t n : {1u, 3u, 126u, 127u, 128u, 1000u}) {
    in.resize(n);
    want.resize(n);
    for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    ref.process(in.data(), want.data(), n);
    const auto in_f = to_interleaved(in);
    std::vector<float> got(2 * n);
    simd.process(in_f.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[2 * i], want[i].real(), 1e-4) << "chunk " << n;
      EXPECT_NEAR(got[2 * i + 1], want[i].imag(), 1e-4) << "chunk " << n;
    }
  }
}

TEST(FirSimd, FilterInPlaceMatchesOutOfPlace) {
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 63);
  dsp::simd::FirSimdFilter a{coeffs};
  dsp::simd::FirSimdFilter b{coeffs};
  sim::Rng rng{33};
  std::vector<cplx> in(500);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  auto x = to_interleaved(in);
  std::vector<float> out(x.size());
  a.process(x.data(), out.data(), in.size());
  b.process(x.data(), x.data(), in.size());  // in-place
  EXPECT_EQ(x, out);
}

TEST(FirSimd, DecimatorMatchesBlockDecimationGrid) {
  const auto coeffs = dsp::design_lowpass(6e3, 500e3, 129);
  const std::size_t decim = 8;
  dsp::FirBlockDecimator<cplx> ref{coeffs, decim};
  dsp::simd::FirSimdDecimator simd{coeffs, decim};
  sim::Rng rng{34};
  std::vector<cplx> in, want;
  // Chunks smaller than, equal to, and coprime with the decimation: the
  // survivor grid and phase must match the block decimator exactly.
  for (std::size_t n : {1u, 5u, 7u, 8u, 9u, 777u, 4096u}) {
    in.resize(n);
    want.resize(n / decim + 1);
    for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
    const std::size_t want_n = ref.process(in.data(), n, want.data());
    const auto in_f = to_interleaved(in);
    std::vector<cplx> got(n / decim + 1);
    const std::size_t got_n = simd.process(in_f.data(), n, got.data());
    ASSERT_EQ(got_n, want_n) << "chunk " << n;
    ASSERT_EQ(simd.phase(), ref.phase()) << "chunk " << n;
    for (std::size_t i = 0; i < got_n; ++i) {
      EXPECT_NEAR(got[i].real(), want[i].real(), 1e-4) << "chunk " << n;
      EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-4) << "chunk " << n;
    }
  }
}

TEST(FirSimd, DenormalBlocksStayFiniteAndTiny) {
  // A block of float32 denormals must neither trap nor produce garbage:
  // outputs are finite and essentially zero (flush-to-zero is fine).
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 63);
  dsp::simd::FirSimdFilter lpf{coeffs};
  std::vector<float> in(2 * 256);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = (i % 2 ? 1.0f : -1.0f) * 1e-42f;  // subnormal float32
  }
  std::vector<float> out(in.size());
  lpf.process(in.data(), out.data(), 256);
  for (float v : out) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LE(std::abs(v), 1e-30f);
  }
  // Same through the oscillator on subnormal doubles.
  dsp::simd::SimdNco nco{0.3, 1.1};
  std::vector<double> tiny(256, 1e-310);
  std::vector<float> mixed(2 * tiny.size());
  nco.mix_real(tiny.data(), mixed.data(), tiny.size());
  for (float v : mixed) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LE(std::abs(v), 1e-30f);
  }
}

TEST(FirSimd, NanBlockFlushesInsteadOfPoisoningState) {
  // NaNs must stay confined to the outputs whose window overlaps them:
  // once taps-1 clean samples have passed, the filter matches a double
  // reference fed the same stream sample for sample.
  const auto coeffs = dsp::design_lowpass(4e3, 31.25e3, 63);
  const std::size_t taps = coeffs.size();
  dsp::FirBlockFilter<cplx> ref{coeffs};
  dsp::simd::FirSimdFilter simd{coeffs};
  sim::Rng rng{35};
  const std::size_t nan_len = 32;
  const std::size_t clean_len = 512;
  std::vector<cplx> in(nan_len + clean_len);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t i = 0; i < nan_len; ++i) in[i] = {nan, nan};
  for (std::size_t i = nan_len; i < in.size(); ++i) {
    in[i] = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  }
  std::vector<cplx> want(in.size());
  ref.process(in.data(), want.data(), in.size());
  const auto in_f = to_interleaved(in);
  std::vector<float> got(2 * in.size());
  simd.process(in_f.data(), got.data(), in.size());
  const std::size_t flushed = nan_len + taps - 1;
  for (std::size_t i = flushed; i < in.size(); ++i) {
    ASSERT_TRUE(std::isfinite(got[2 * i])) << "sample " << i;
    ASSERT_TRUE(std::isfinite(got[2 * i + 1])) << "sample " << i;
    EXPECT_NEAR(got[2 * i], want[i].real(), 1e-4) << "sample " << i;
    EXPECT_NEAR(got[2 * i + 1], want[i].imag(), 1e-4) << "sample " << i;
  }
}

// ----------------------------------------------------- Ddc / derotate

dsp::Ddc::Params ddc_params(dsp::KernelPolicy policy) {
  dsp::Ddc::Params p;
  p.kernels = policy;
  return p;
}

TEST(SimdParity, DdcSimdMatchesBlockIq) {
  dsp::Ddc block{ddc_params(dsp::KernelPolicy::kBlock)};
  dsp::Ddc simd{ddc_params(dsp::KernelPolicy::kSimd)};
  sim::Rng rng{36};
  std::vector<double> in;
  std::vector<cplx> iq_b, iq_s;
  // Chunks below, at, and coprime with the decimation of 16.
  for (std::size_t n : {3u, 16u, 17u, 999u, 20000u}) {
    in.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = std::cos(1.13 * static_cast<double>(i)) +
              rng.normal(0.0, 0.01);
    }
    iq_b.clear();
    iq_s.clear();
    const std::size_t got_b = block.process(std::span<const double>{in}, iq_b);
    const std::size_t got_s = simd.process(std::span<const double>{in}, iq_s);
    ASSERT_EQ(got_s, got_b) << "chunk " << n;
    ASSERT_EQ(simd.decimation_phase(), block.decimation_phase());
    for (std::size_t i = 0; i < got_b; ++i) {
      EXPECT_NEAR(iq_s[i].real(), iq_b[i].real(), 1e-5);
      EXPECT_NEAR(iq_s[i].imag(), iq_b[i].imag(), 1e-5);
    }
  }
}

TEST(SimdParity, DdcPushAndProcessShareState) {
  // push() streams one sample at a time through the same simd stages, so
  // mixing call styles tracks block-call-only processing to float32
  // tolerance (lane reseeds land differently per call split, so bit
  // equality is not promised — the kSimd IQ contract is).
  dsp::Ddc mixed_calls{ddc_params(dsp::KernelPolicy::kSimd)};
  dsp::Ddc block_calls{ddc_params(dsp::KernelPolicy::kSimd)};
  sim::Rng rng{37};
  std::vector<double> in(1000);
  for (auto& v : in) v = rng.normal(0.0, 1.0);

  std::vector<cplx> got;
  for (std::size_t i = 0; i < 100; ++i) {
    if (const auto iq = mixed_calls.push(in[i])) got.push_back(*iq);
  }
  mixed_calls.process(std::span<const double>{in}.subspan(100), got);

  std::vector<cplx> want;
  block_calls.process(std::span<const double>{in}, want);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), 1e-5) << "iq sample " << i;
    EXPECT_NEAR(got[i].imag(), want[i].imag(), 1e-5) << "iq sample " << i;
  }
}

TEST(SimdParity, DerotateSimdMatchesScalar) {
  sim::Rng rng{38};
  std::vector<cplx> iq(5000);
  for (auto& v : iq) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const auto a = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kScalar);
  const auto b = dsp::derotate(iq, 31250.0, 12.7, dsp::KernelPolicy::kSimd);
  // Tolerance: ~1e-4 rad of in-chunk float32 phasor drift scaled by the
  // unit-normal sample magnitudes (|x| reaches ~4 at n=5000).
  for (std::size_t i = 0; i < iq.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 5e-5);
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 5e-5);
  }
}

// ----------------------------------------------------------- Channelizer

namespace {

struct ChzrFixture {
  dsp::PolyphaseChannelizer::Plan plan;
  std::vector<double> proto;
  std::vector<double> centers;
  double fs = 62500.0;

  explicit ChzrFixture(std::vector<double> c = {3000.0, 4500.0, 6000.0,
                                                7500.0}) {
    centers = std::move(c);
    plan = dsp::PolyphaseChannelizer::plan(fs, 375.0, centers);
    proto = plan.viable
                ? dsp::design_lowpass(plan.cutoff_hz, fs, plan.taps)
                : std::vector<double>{};
  }

  dsp::PolyphaseChannelizer make(
      dsp::KernelPolicy policy,
      dsp::PolyphaseChannelizer::Params::Fold fold =
          dsp::PolyphaseChannelizer::Params::Fold::kAuto) const {
    return dsp::PolyphaseChannelizer{{
        .sample_rate_hz = fs,
        .fft_size = plan.fft_size,
        .decimation = plan.decimation,
        .prototype = proto,
        .center_hz = centers,
        .kernels = policy,
        .fold = fold,
    }};
  }
};

}  // namespace

TEST(SimdParity, ChannelizerSimdF64FoldMatchesScalarFold) {
  // With the fold pinned to float64, the simd path changes only loop
  // structure and summation order, so lanes agree to summation-reordering
  // tolerance — not just float32 tolerance.
  const ChzrFixture fx;
  ASSERT_TRUE(fx.plan.viable) << fx.plan.reason;
  auto scalar = fx.make(dsp::KernelPolicy::kScalar);
  auto simd = fx.make(dsp::KernelPolicy::kSimd,
                      dsp::PolyphaseChannelizer::Params::Fold::kFloat64);
  EXPECT_FALSE(simd.float32_path());
  sim::Rng rng{39};
  std::vector<cplx> in(12000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const std::size_t frames_a = scalar.process(in.data(), in.size());
  const std::size_t frames_b = simd.process(in.data(), in.size());
  ASSERT_EQ(frames_a, frames_b);
  ASSERT_GT(frames_a, 100u);
  for (std::size_t k = 0; k < fx.centers.size(); ++k) {
    for (std::size_t f = 0; f < frames_a; ++f) {
      ASSERT_NEAR(simd.lane(k)[f].real(), scalar.lane(k)[f].real(), 1e-9)
          << "lane " << k << " frame " << f;
      ASSERT_NEAR(simd.lane(k)[f].imag(), scalar.lane(k)[f].imag(), 1e-9)
          << "lane " << k << " frame " << f;
    }
  }
}

TEST(SimdParity, ChannelizerFloat32LaneTracksScalarToFloatTolerance) {
  // The default kSimd channelizer rides the float32 fast path: fold,
  // inverse FFT and lane rotation all single-precision. Lane IQ tracks
  // the scalar float64 reference to float32-scale error — orders of
  // magnitude inside the decision chain's margin.
  const ChzrFixture fx;
  ASSERT_TRUE(fx.plan.viable) << fx.plan.reason;
  auto scalar = fx.make(dsp::KernelPolicy::kScalar);
  auto simd = fx.make(dsp::KernelPolicy::kSimd);
  EXPECT_TRUE(simd.float32_path());
  sim::Rng rng{39};
  std::vector<cplx> in(12000);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const std::size_t frames_a = scalar.process(in.data(), in.size());
  const std::size_t frames_b = simd.process(in.data(), in.size());
  ASSERT_EQ(frames_a, frames_b);
  ASSERT_GT(frames_a, 100u);
  for (std::size_t k = 0; k < fx.centers.size(); ++k) {
    double ref_pow = 0.0;
    for (std::size_t f = 0; f < frames_a; ++f) {
      ref_pow += std::norm(scalar.lane(k)[f]);
    }
    const double scale =
        std::max(1.0, std::sqrt(ref_pow / static_cast<double>(frames_a)));
    for (std::size_t f = 0; f < frames_a; ++f) {
      ASSERT_NEAR(simd.lane(k)[f].real(), scalar.lane(k)[f].real(),
                  1e-3 * scale)
          << "lane " << k << " frame " << f;
      ASSERT_NEAR(simd.lane(k)[f].imag(), scalar.lane(k)[f].imag(),
                  1e-3 * scale)
          << "lane " << k << " frame " << f;
    }
  }
}

TEST(SimdParity, ChannelizerFloat32SurvivesDenormalAndNanBlocks) {
  // Denormal-flooded input must not slow down or corrupt the float32
  // path (narrowing flushes the tiny values harmlessly), and NaN blocks
  // must propagate without crashing — then wash out of the FIR window.
  const ChzrFixture fx;
  ASSERT_TRUE(fx.plan.viable) << fx.plan.reason;
  auto simd = fx.make(dsp::KernelPolicy::kSimd);
  ASSERT_TRUE(simd.float32_path());
  std::vector<cplx> denorm(4096, cplx{1e-310, -1e-312});
  const std::size_t frames_d = simd.process(denorm.data(), denorm.size());
  ASSERT_GT(frames_d, 0u);
  for (std::size_t f = 0; f < frames_d; ++f) {
    ASSERT_TRUE(std::isfinite(simd.lane(0)[f].real()));
    ASSERT_TRUE(std::isfinite(simd.lane(0)[f].imag()));
  }
  std::vector<cplx> nan_block(
      2048, cplx{std::numeric_limits<double>::quiet_NaN(), 0.0});
  EXPECT_NO_THROW(simd.process(nan_block.data(), nan_block.size()));
  // Once the NaNs age out of the prototype window, output is clean again.
  std::vector<cplx> clean(fx.proto.size() + 8192, cplx{0.1, -0.1});
  const std::size_t frames_c = simd.process(clean.data(), clean.size());
  ASSERT_GT(frames_c, 0u);
  const std::size_t settled = fx.proto.size() / fx.plan.decimation + 2;
  ASSERT_GT(frames_c, settled);
  for (std::size_t f = settled; f < frames_c; ++f) {
    ASSERT_TRUE(std::isfinite(simd.lane(0)[f].real())) << "frame " << f;
    ASSERT_TRUE(std::isfinite(simd.lane(0)[f].imag())) << "frame " << f;
  }
}

// --------------------------------------------------- packet-level parity

// Timestamp tolerance for kSimd decodes: float32 can move a slicer
// crossing by a decimated sample or two — two channelizer lane samples
// bound it with an order of magnitude to spare.
constexpr double kSimdTimeTol = 256e-6;

reader::FdmaRxChain::Params fdma_params(dsp::KernelPolicy policy) {
  reader::FdmaRxChain::Params fp;
  fp.ddc.decimation = 8;
  fp.workers = 1;
  fp.kernels = policy;
  fp.bank = reader::FdmaRxChain::BankPolicy::kPerChannel;
  for (int k = 0; k < 4; ++k) fp.channels.push_back({3000.0 + 1500.0 * k});
  return fp;
}

std::vector<double> fdma_capture() {
  acoustic::UplinkWaveformSynth synth{
      acoustic::UplinkWaveformSynth::Params{}};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < 4; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, 3000.0 + 1500.0 * k}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.12 + 0.01 * k;
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  return synth.synthesize(srcs, 0.3, rng);
}

std::vector<reader::RxPacket> decode_with(dsp::KernelPolicy policy,
                                          const std::vector<double>& wave) {
  reader::FdmaRxChain chain{fdma_params(policy)};
  // Awkward chunking so the simd stages cross many lane/chunk alignments.
  constexpr std::size_t kChunk = 7777;
  for (std::size_t off = 0; off < wave.size(); off += kChunk) {
    chain.process(wave.data() + off, std::min(kChunk, wave.size() - off));
  }
  return chain.drain_packets();
}

void expect_packet_parity(const std::vector<reader::RxPacket>& ref,
                          const std::vector<reader::RxPacket>& got,
                          double time_tol) {
  ASSERT_EQ(got.size(), ref.size());
  std::size_t channels = 0;
  for (const auto& p : ref) channels = std::max(channels, p.channel + 1);
  for (std::size_t c = 0; c < channels; ++c) {
    std::vector<const reader::RxPacket*> a, b;
    for (const auto& p : ref) {
      if (p.channel == c) a.push_back(&p);
    }
    for (const auto& p : got) {
      if (p.channel == c) b.push_back(&p);
    }
    ASSERT_EQ(b.size(), a.size()) << "channel " << c;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(b[i]->packet, a[i]->packet) << "channel " << c;
      EXPECT_NEAR(b[i]->time_s, a[i]->time_s, time_tol) << "channel " << c;
    }
  }
}

TEST(SimdParity, FdmaBankThreeTierPacketParity) {
  const auto wave = fdma_capture();
  const auto scalar = decode_with(dsp::KernelPolicy::kScalar, wave);
  const auto block = decode_with(dsp::KernelPolicy::kBlock, wave);
  const auto simd = decode_with(dsp::KernelPolicy::kSimd, wave);
  ASSERT_GE(scalar.size(), 4u);  // every channel decodes its tag
  // scalar vs block: bit-exact including timestamps.
  ASSERT_EQ(block.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(block[i].packet, scalar[i].packet);
    EXPECT_EQ(block[i].channel, scalar[i].channel);
    EXPECT_DOUBLE_EQ(block[i].time_s, scalar[i].time_s);
  }
  // simd: identical packets, timestamps inside the float32 jitter bound.
  expect_packet_parity(scalar, simd, kSimdTimeTol);
}

TEST(SimdParity, ForcedPortableTierDecodesIdenticalPackets) {
  // The runtime half of the -DARACHNET_DISABLE_SIMD guarantee: kSimd on
  // the portable vector tier decodes the same packets as on the best
  // hardware tier — an ISA downgrade (or a disabled build) degrades
  // speed, never results.
  const dsp::SimdIsa before = dsp::active_simd_isa();
  const auto wave = fdma_capture();
  const auto best = decode_with(dsp::KernelPolicy::kSimd, wave);
  dsp::force_simd_isa(dsp::SimdIsa::kGeneric);
  EXPECT_STREQ(dsp::simd::kernels().isa,
               dsp::to_string(dsp::active_simd_isa()));
  const auto portable = decode_with(dsp::KernelPolicy::kSimd, wave);
  dsp::force_simd_isa(before);
  ASSERT_GE(best.size(), 4u);
  expect_packet_parity(best, portable, kSimdTimeTol);
}

TEST(SimdParity, ForcedHardwareTiersDecodeIdenticalPackets) {
  // Companion to the portable-tier check above, for the hardware tiers:
  // forcing kAvx2 and kAvx512 (where the CPU supports them — the clamp
  // silently moves unsupported requests, which skips that tier here)
  // must decode the identical packet set as the auto-selected best tier.
  const dsp::SimdIsa before = dsp::active_simd_isa();
  const auto wave = fdma_capture();
  const auto best = decode_with(dsp::KernelPolicy::kSimd, wave);
  ASSERT_GE(best.size(), 4u);
  for (const dsp::SimdIsa isa :
       {dsp::SimdIsa::kAvx2, dsp::SimdIsa::kAvx512}) {
    dsp::force_simd_isa(isa);
    if (dsp::active_simd_isa() != isa) continue;  // clamped: no such tier
    SCOPED_TRACE(dsp::to_string(isa));
    EXPECT_STREQ(dsp::simd::kernels().isa, dsp::to_string(isa));
    const auto got = decode_with(dsp::KernelPolicy::kSimd, wave);
    expect_packet_parity(best, got, kSimdTimeTol);
  }
  dsp::force_simd_isa(before);
}

// ------------------------------------------------------- simd isa env

TEST(SimdIsaEnv, ParseAcceptsAllTiersAndRejectsJunk) {
  EXPECT_EQ(dsp::parse_simd_isa("generic"), dsp::SimdIsa::kGeneric);
  EXPECT_EQ(dsp::parse_simd_isa("neon"), dsp::SimdIsa::kNeon);
  EXPECT_EQ(dsp::parse_simd_isa("avx2"), dsp::SimdIsa::kAvx2);
  EXPECT_EQ(dsp::parse_simd_isa("avx512"), dsp::SimdIsa::kAvx512);
  EXPECT_FALSE(dsp::parse_simd_isa("avx999").has_value());
  EXPECT_FALSE(dsp::parse_simd_isa("AVX2").has_value());
  EXPECT_FALSE(dsp::parse_simd_isa("").has_value());
}

TEST(SimdIsaEnv, UnrecognizedValueWarnsNamingValueAndFallback) {
  CapturedLog cap;
  telemetry::set_log_sink(capture_sink, &cap);

  // Unset, empty and recognized values resolve silently (recognized
  // values may still clamp to the hardware, but never warn).
  const dsp::SimdIsa auto_best = dsp::simd_isa_from_env_value(nullptr);
  EXPECT_EQ(dsp::simd_isa_from_env_value(""), auto_best);
  (void)dsp::simd_isa_from_env_value("generic");
  (void)dsp::simd_isa_from_env_value("avx512");
  EXPECT_EQ(cap.count, 0);

  // An unrecognized value falls back to auto-detection with one WARN
  // naming what was rejected, what it fell back to, and what is
  // accepted — mirroring the kernel-policy env contract.
  const dsp::SimdIsa got = dsp::simd_isa_from_env_value("avx999");
  telemetry::set_log_sink(telemetry::stderr_log_sink);
  EXPECT_EQ(got, auto_best);
  ASSERT_EQ(cap.count, 1);
  EXPECT_EQ(cap.level, telemetry::LogLevel::kWarn);
  EXPECT_EQ(cap.component, "kernels");
  EXPECT_EQ(cap.string_fields["value"], "avx999");
  EXPECT_EQ(cap.string_fields["fallback"], dsp::to_string(auto_best));
  EXPECT_NE(cap.string_fields["accepted"].find("avx512"),
            std::string::npos);
}

// ------------------------------------------- float32 fold, wide banks

using ChzrFold = dsp::PolyphaseChannelizer::Params::Fold;

// The bench §1c bank recipe: a uniform grid from 3375 Hz (odd subcarrier
// harmonics land 750 Hz off-channel) and one tag per subcarrier.
reader::FdmaRxChain::Params wide_bank_params(int n, ChzrFold fold) {
  reader::FdmaRxChain::Params fp;
  // 32 channels top out near 50 kHz and need the 125 kS/s
  // (decimation-4) IQ rate; up to 16 fit the usual 62.5 kS/s bank.
  fp.ddc.decimation = n > 16 ? 4 : 8;
  fp.workers = 1;
  fp.kernels = dsp::KernelPolicy::kSimd;
  fp.bank = reader::FdmaRxChain::BankPolicy::kChannelizer;
  fp.chzr_fold = fold;
  for (int k = 0; k < n; ++k) fp.channels.push_back({3375.0 + 1500.0 * k});
  return fp;
}

std::vector<double> wide_capture(int n, double noise_sigma) {
  acoustic::UplinkWaveformSynth::Params sp;
  sp.noise_sigma = noise_sigma;
  acoustic::UplinkWaveformSynth synth{sp};
  sim::Rng rng{101};
  std::vector<acoustic::BackscatterSource> srcs;
  for (int k = 0; k < n; ++k) {
    const phy::UlPacket pkt{.tid = static_cast<std::uint8_t>(k + 1),
                            .payload =
                                static_cast<std::uint16_t>(0x500 + k)};
    phy::SubcarrierModulator mod{{375.0, 3375.0 + 1500.0 * k}};
    acoustic::BackscatterSource s;
    s.chips = mod.modulate(phy::Fm0Encoder::encode_frame(pkt.serialize()));
    s.chip_rate = mod.subchip_rate();
    s.start_s = 0.03;
    s.amplitude = 0.18 + 0.01 * (k % 5);
    s.phase_rad = 0.5 + 0.4 * k;
    srcs.push_back(s);
  }
  return synth.synthesize(srcs, 0.3, rng);
}

std::vector<reader::RxPacket> decode_wide(int n, ChzrFold fold,
                                          const std::vector<double>& wave) {
  reader::FdmaRxChain chain{wide_bank_params(n, fold)};
  EXPECT_EQ(chain.active_bank(),
            reader::FdmaRxChain::BankPolicy::kChannelizer);
  constexpr std::size_t kChunk = 7777;
  for (std::size_t off = 0; off < wave.size(); off += kChunk) {
    chain.process(wave.data() + off, std::min(kChunk, wave.size() - off));
  }
  return chain.drain_packets();
}

TEST(SimdParity, ChannelizerF32VsF64PacketParityAcrossBankWidths) {
  // The kSimd contract applied to the float32 channelizer fast path at
  // every bank width the bench exercises: pinning the fold to float64
  // and letting it auto-select float32 must yield identical packets on
  // every channel, with timestamps inside the float32 jitter bound.
  for (const int n : {4, 8, 16, 32}) {
    SCOPED_TRACE(n);
    const auto wave = wide_capture(n, 0.004);
    const auto f64 = decode_wide(n, ChzrFold::kFloat64, wave);
    const auto f32 = decode_wide(n, ChzrFold::kAuto, wave);
    // The 32-wide grid stacks enough co-channel harmonic energy that one
    // marginal tag can miss in *both* folds; parity, not yield, is the
    // contract under test.
    ASSERT_GE(f64.size(), static_cast<std::size_t>(n) - 1)
        << "almost every channel decodes its tag";
    expect_packet_parity(f64, f32, kSimdTimeTol);
  }
}

TEST(SimdParity, LowSnrCrcOutcomesMatchAcrossFolds) {
  // Near the noise floor the CRC decision is the sharpest lens on the
  // float32 fold: a single flipped slicer decision would surface as a
  // frames_ok / crc_failures mismatch. Both folds must reach identical
  // per-channel outcomes (and the same drained packets) on a capture
  // noisy enough that decode is genuinely marginal.
  const int n = 8;
  const auto wave = wide_capture(n, 0.06);
  reader::FdmaRxChain f64{wide_bank_params(n, ChzrFold::kFloat64)};
  reader::FdmaRxChain f32{wide_bank_params(n, ChzrFold::kAuto)};
  constexpr std::size_t kChunk = 7777;
  for (std::size_t off = 0; off < wave.size(); off += kChunk) {
    const std::size_t len = std::min(kChunk, wave.size() - off);
    f64.process(wave.data() + off, len);
    f32.process(wave.data() + off, len);
  }
  std::uint64_t total_ok = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(n); ++c) {
    const auto a = f64.channel_stats(c);
    const auto b = f32.channel_stats(c);
    EXPECT_EQ(b.frames_ok, a.frames_ok) << "channel " << c;
    EXPECT_EQ(b.crc_failures, a.crc_failures) << "channel " << c;
    total_ok += a.frames_ok;
  }
  EXPECT_GE(total_ok, 1u) << "capture must not be pure noise";
  expect_packet_parity(f64.drain_packets(), f32.drain_packets(),
                       kSimdTimeTol);
}

TEST(SimdParity, ChannelizerFloat32NearNyquistLanesTrackScalar) {
  // Subcarriers landing in the top bins of the bank (~bin 121 and 127 of
  // 128 usable): the residual rotator steps nearly pi per lane sample,
  // the worst case for the float32 phasor. Lanes must still track the
  // scalar float64 reference to float32 tolerance.
  const ChzrFixture fx({29500.0, 31000.0});
  ASSERT_TRUE(fx.plan.viable) << fx.plan.reason;
  auto scalar = fx.make(dsp::KernelPolicy::kScalar);
  auto simd = fx.make(dsp::KernelPolicy::kSimd);
  ASSERT_TRUE(simd.float32_path());
  sim::Rng rng{77};
  std::vector<cplx> in(16384);
  for (auto& v : in) v = {rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)};
  const std::size_t frames_a = scalar.process(in.data(), in.size());
  const std::size_t frames_b = simd.process(in.data(), in.size());
  ASSERT_EQ(frames_a, frames_b);
  ASSERT_GT(frames_a, 100u);
  for (std::size_t k = 0; k < fx.centers.size(); ++k) {
    double ref_pow = 0.0;
    for (std::size_t f = 0; f < frames_a; ++f) {
      ref_pow += std::norm(scalar.lane(k)[f]);
    }
    const double scale =
        std::max(1.0, std::sqrt(ref_pow / static_cast<double>(frames_a)));
    for (std::size_t f = 0; f < frames_a; ++f) {
      ASSERT_NEAR(simd.lane(k)[f].real(), scalar.lane(k)[f].real(),
                  1e-3 * scale)
          << "lane " << k << " frame " << f;
      ASSERT_NEAR(simd.lane(k)[f].imag(), scalar.lane(k)[f].imag(),
                  1e-3 * scale)
          << "lane " << k << " frame " << f;
    }
  }
}

}  // namespace
